package tables

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/sim"
	"repro/internal/wire"
	"repro/workloads"
)

// DefaultHotpathBenchmarks is the hot-path lane's workload mix: three
// locality-heavy streams where same-epoch repeats dominate (the shape the
// elider and the run-collapsed columnar apply are built for), plus two
// honest negatives — canneal's random access defeats the repeat cache and
// fanin's sync density flushes it before any repeat survives.
var DefaultHotpathBenchmarks = []string{"streamcluster", "pbzip2", "x264", "canneal", "fanin"}

// HotpathRow is one (program, elide, apply) cell of the hot-path matrix:
// the captured event stream of the program, optionally filtered by the
// front-line elider, applied to a fresh serial detector either
// record-at-a-time or through the run-collapsed columnar batch path.
type HotpathRow struct {
	Program string `json:"program"`
	// Elide is whether the stream passed the front-line same-epoch filter
	// before being applied (and before wire encoding).
	Elide bool `json:"elide"`
	// Apply is the detector ingestion path: "record" (one ApplyRec
	// dispatch per event) or "columnar" (ApplyCols with run collapse).
	Apply string `json:"apply"`
	// Events is the original stream length; Elided is how many of its
	// accesses the filter dropped; AppliedRecords is what reached the
	// detector (Events - Elided).
	Events         uint64 `json:"events"`
	Elided         uint64 `json:"elided"`
	AppliedRecords uint64 `json:"applied_records"`
	// NsPerEvent is detector apply wall time over the ORIGINAL event
	// count, so elide-on rows get credit for the work they skip.
	NsPerEvent float64 `json:"ns_per_event"`
	// WireBytes is the columnar (codec v2) payload size of the stream the
	// detector saw, batched at the transport batch size — what a remote
	// session would put on the wire.
	WireBytes     uint64  `json:"wire_bytes"`
	BytesPerEvent float64 `json:"bytes_per_event"`
	// Races pins losslessness: identical across all four cells of a
	// program or the bench itself fails.
	Races int `json:"races"`
}

// captureStream runs the program once and returns its full event stream.
func captureStream(spec workloads.Spec, scale int, seed int64) []event.Rec {
	var recs []event.Rec
	enc := &event.Encoder{Flush: func(b *event.Batch) {
		recs = append(recs, b.Recs...)
		event.PutBatch(b)
	}}
	sim.Run(spec.Build(scale), enc, sim.Options{Seed: seed})
	enc.Close()
	return recs
}

// elideStream replays recs through the front-line filter and returns the
// surviving stream plus the elided count.
func elideStream(recs []event.Rec) ([]event.Rec, uint64) {
	var out []event.Rec
	enc := &event.Encoder{Flush: func(b *event.Batch) {
		out = append(out, b.Recs...)
		event.PutBatch(b)
	}}
	el := event.NewElider(enc, event.EliderOptions{})
	for i := range recs {
		event.ApplyRec(el, &recs[i])
	}
	enc.Close()
	return out, el.Elided()
}

// wireBytes measures the columnar payload size of the stream at the
// transport batch size (frame headers excluded — they are codec-invariant).
func wireBytes(recs []event.Rec) uint64 {
	var total uint64
	var buf []byte
	for lo := 0; lo < len(recs); lo += event.DefaultBatchSize {
		hi := lo + event.DefaultBatchSize
		if hi > len(recs) {
			hi = len(recs)
		}
		buf = wire.AppendColumnar(buf[:0], recs[lo:hi])
		total += uint64(len(buf))
	}
	return total
}

// chunkCols pre-builds the stream's columnar batches at the transport
// batch size, so the timed region measures only detector ingestion — a
// real session receives its Cols already decoded from the wire.
func chunkCols(recs []event.Rec) []*event.Cols {
	var batches []*event.Cols
	for lo := 0; lo < len(recs); lo += event.DefaultBatchSize {
		hi := lo + event.DefaultBatchSize
		if hi > len(recs) {
			hi = len(recs)
		}
		c := &event.Cols{}
		for _, r := range recs[lo:hi] {
			c.Append(r)
		}
		batches = append(batches, c)
	}
	return batches
}

// applyStream feeds the stream to a fresh dynamic-granularity detector via
// the chosen path and returns the apply wall time and the race count.
// Exactly one of recs/batches is used.
func applyStream(recs []event.Rec, batches []*event.Cols) (time.Duration, int) {
	d := detector.New(detector.Config{Granularity: detector.Dynamic})
	start := time.Now()
	if batches != nil {
		for _, c := range batches {
			d.ApplyCols(c)
		}
	} else {
		for i := range recs {
			event.ApplyRec(d, &recs[i])
		}
	}
	return time.Since(start), len(d.Races())
}

// HotpathBench measures the columnar hot path end to end: for each
// workload it captures the event stream once, derives the elided variant,
// and times both detector ingestion paths over both streams. Verdicts are
// asserted identical across all four cells — a divergence is returned as
// an error, never silently recorded.
func (r *Runner) HotpathBench(names []string) ([]HotpathRow, error) {
	if len(names) == 0 {
		names = DefaultHotpathBenchmarks
	}
	var rows []HotpathRow
	for _, name := range names {
		spec, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		full := captureStream(spec, r.cfg.Scale, r.cfg.Seed)
		elided, nElided := elideStream(full)
		streams := []struct {
			elide  bool
			recs   []event.Rec
			elided uint64
		}{
			{false, full, 0},
			{true, elided, nElided},
		}
		baseRaces := -1
		for _, st := range streams {
			bytes := wireBytes(st.recs)
			cols := chunkCols(st.recs)
			for _, columnar := range []bool{false, true} {
				var best time.Duration
				var races int
				for run := 0; run < r.cfg.TimingRuns; run++ {
					runtime.GC() // isolate timed runs from each other's garbage
					batches := cols
					if !columnar {
						batches = nil
					}
					d, got := applyStream(st.recs, batches)
					races = got
					if run == 0 || d < best {
						best = d
					}
				}
				if baseRaces < 0 {
					baseRaces = races
				} else if races != baseRaces {
					return nil, fmt.Errorf(
						"hotpath: %s elide=%v apply=%v found %d races, baseline %d — hot path is not lossless",
						name, st.elide, columnar, races, baseRaces)
				}
				apply := "record"
				if columnar {
					apply = "columnar"
				}
				row := HotpathRow{
					Program:        name,
					Elide:          st.elide,
					Apply:          apply,
					Events:         uint64(len(full)),
					Elided:         st.elided,
					AppliedRecords: uint64(len(st.recs)),
					WireBytes:      bytes,
					Races:          races,
				}
				if len(full) > 0 {
					row.NsPerEvent = float64(best.Nanoseconds()) / float64(len(full))
					row.BytesPerEvent = float64(bytes) / float64(len(full))
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// HotpathBenchJSON is the machine-readable BENCH_hotpath.json document.
type HotpathBenchJSON struct {
	Config struct {
		Scale      int   `json:"scale"`
		Seed       int64 `json:"seed"`
		GOMAXPROCS int   `json:"gomaxprocs"`
		TimingRuns int   `json:"timing_runs"`
	} `json:"config"`
	Rows []HotpathRow `json:"rows"`
}

// WriteHotpathJSON runs the hot-path lane and writes BENCH_hotpath.json.
func (r *Runner) WriteHotpathJSON(w io.Writer, names []string) error {
	var out HotpathBenchJSON
	out.Config.Scale = r.cfg.Scale
	out.Config.Seed = r.cfg.Seed
	out.Config.GOMAXPROCS = runtime.GOMAXPROCS(0)
	out.Config.TimingRuns = r.cfg.TimingRuns
	rows, err := r.HotpathBench(names)
	if err != nil {
		return err
	}
	out.Rows = rows
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
