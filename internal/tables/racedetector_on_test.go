//go:build race

package tables

// raceDetectorOn trims the timing gates when the test binary runs under
// the Go race detector.
const raceDetectorOn = true
