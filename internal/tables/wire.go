package tables

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"time"

	"repro/internal/event"
	"repro/internal/server"
	"repro/internal/vc"
	"repro/internal/wire"
	"repro/race"
)

// DefaultWireBatchSizes is the batch-size sweep of the encode/decode
// micro-bench: a small batch (framing overhead dominates), the encoder's
// default, and a large batch (payload throughput dominates).
var DefaultWireBatchSizes = []int{64, event.DefaultBatchSize, 8192}

// WireCodecRow is one batch size of the encode/decode micro-bench: how
// fast a batch can be framed and how fast a frame can be decoded back
// into a pooled batch, with no network or detector in the path.
type WireCodecRow struct {
	BatchRecs     int     `json:"batch_recs"`
	FrameBytes    int     `json:"frame_bytes"`
	BytesPerEvent float64 `json:"bytes_per_event"`
	// EncodeEventsPerSec / DecodeEventsPerSec are record throughputs of
	// AppendBatchFrame and ReadFrame+DecodeBatch respectively.
	EncodeEventsPerSec float64 `json:"encode_events_per_sec"`
	DecodeEventsPerSec float64 `json:"decode_events_per_sec"`
	EncodeMBPerSec     float64 `json:"encode_mb_per_sec"`
	DecodeMBPerSec     float64 `json:"decode_mb_per_sec"`
}

// wireBenchRecs builds a deterministic batch of n access-heavy records.
func wireBenchRecs(n int, seed int64) []event.Rec {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]event.Rec, n)
	for i := range recs {
		op := event.OpRead
		if i%3 == 0 {
			op = event.OpWrite
		}
		recs[i] = event.Rec{
			Op: op, Tid: vc.TID(rng.Intn(8)),
			Addr: 0x10000 + uint64(rng.Intn(1<<20)),
			Size: 4, PC: event.PC(rng.Uint32()), Seq: uint64(i),
		}
	}
	return recs
}

// WireCodecBench measures frame encode and decode throughput for each
// batch size, without touching the network.
func WireCodecBench(batchSizes []int) []WireCodecRow {
	if len(batchSizes) == 0 {
		batchSizes = DefaultWireBatchSizes
	}
	const target = 50 * time.Millisecond
	rows := make([]WireCodecRow, 0, len(batchSizes))
	for _, n := range batchSizes {
		b := &event.Batch{Recs: wireBenchRecs(n, int64(n))}
		h := wire.Header{Session: 1}
		frame := wire.AppendBatchFrame(nil, h, b)

		// Encode: reuse the buffer, as the client's flush path does.
		buf := frame[:0]
		iters, elapsed := 0, time.Duration(0)
		for start := time.Now(); elapsed < target; elapsed = time.Since(start) {
			buf = wire.AppendBatchFrame(buf[:0], h, b)
			iters++
		}
		encEPS := float64(iters) * float64(n) / elapsed.Seconds()

		// Decode: frame reader + batch decode into a pooled batch.
		payload := frame[wire.HeaderSize:]
		iters, elapsed = 0, 0
		for start := time.Now(); elapsed < target; elapsed = time.Since(start) {
			got, err := wire.DecodeBatch(payload)
			if err != nil {
				panic(err)
			}
			event.PutBatch(got)
			iters++
		}
		decEPS := float64(iters) * float64(n) / elapsed.Seconds()

		perEvent := float64(len(frame)) / float64(n)
		rows = append(rows, WireCodecRow{
			BatchRecs:          n,
			FrameBytes:         len(frame),
			BytesPerEvent:      perEvent,
			EncodeEventsPerSec: encEPS,
			DecodeEventsPerSec: decEPS,
			EncodeMBPerSec:     encEPS * perEvent / (1 << 20),
			DecodeMBPerSec:     decEPS * perEvent / (1 << 20),
		})
	}
	return rows
}

// RemoteRow compares one benchmark run in-process against the same run
// streamed to a loopback racedetectd: the Overhead column is the cost of
// the wire protocol plus a process-boundary detector (lower bound, since
// loopback has no real network latency).
type RemoteRow struct {
	Program       string  `json:"program"`
	LocalSeconds  float64 `json:"local_seconds"`
	RemoteSeconds float64 `json:"remote_seconds"`
	// Overhead is RemoteSeconds / LocalSeconds for the same seed and
	// granularity (local runs the serial detector).
	Overhead     float64 `json:"overhead"`
	EventsPerSec float64 `json:"events_per_sec"`
	Batches      uint64  `json:"batches"`
	Races        int     `json:"races"`
}

// RemoteBench runs the runner's benchmarks at dynamic granularity twice —
// in-process and through a loopback detection server — and reports the
// remote overhead. The loopback server lives for the duration of the
// sweep.
func (r *Runner) RemoteBench() ([]RemoteRow, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.New(server.Options{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	}()
	addr := l.Addr().String()

	var rows []RemoteRow
	for _, s := range r.specs {
		local := r.Report(s, race.Options{Granularity: race.Dynamic})
		prog := s.Build(r.cfg.Scale)
		var remote race.Report
		times := make([]time.Duration, 0, r.cfg.TimingRuns)
		for i := 0; i < r.cfg.TimingRuns; i++ {
			runtime.GC()
			remote, err = race.RunE(prog, race.Options{
				Granularity: race.Dynamic, Seed: r.cfg.Seed,
				Workers: 2, Remote: addr,
			})
			if err != nil {
				return nil, fmt.Errorf("%s: remote run: %w", s.Name, err)
			}
			times = append(times, remote.Elapsed)
		}
		row := RemoteRow{
			Program:       s.Name,
			LocalSeconds:  local.Elapsed.Seconds(),
			RemoteSeconds: bestDuration(times).Seconds(),
			Races:         len(remote.Races),
		}
		if row.LocalSeconds > 0 {
			row.Overhead = row.RemoteSeconds / row.LocalSeconds
		}
		if row.RemoteSeconds > 0 {
			row.EventsPerSec = float64(remote.Run.Events) / row.RemoteSeconds
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WireBenchJSON is the machine-readable BENCH_wire.json document: the
// codec micro-bench plus the loopback remote-overhead sweep.
type WireBenchJSON struct {
	Config struct {
		Scale      int   `json:"scale"`
		Seed       int64 `json:"seed"`
		GOMAXPROCS int   `json:"gomaxprocs"`
		RecBytes   int   `json:"rec_bytes"`
		HeaderSize int   `json:"header_size"`
	} `json:"config"`
	Codec  []WireCodecRow `json:"codec"`
	Remote []RemoteRow    `json:"remote"`
}

// WriteWireJSON runs both wire benches and writes BENCH_wire.json.
func (r *Runner) WriteWireJSON(w io.Writer, batchSizes []int) error {
	var out WireBenchJSON
	out.Config.Scale = r.cfg.Scale
	out.Config.Seed = r.cfg.Seed
	out.Config.GOMAXPROCS = runtime.GOMAXPROCS(0)
	out.Config.RecBytes = wire.RecSize
	out.Config.HeaderSize = wire.HeaderSize
	out.Codec = WireCodecBench(batchSizes)
	rows, err := r.RemoteBench()
	if err != nil {
		return err
	}
	out.Remote = rows
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
