package tables

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"time"

	"repro/internal/event"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/vc"
	"repro/internal/wire"
	"repro/race"
)

// DefaultWireBatchSizes is the batch-size sweep of the encode/decode
// micro-bench: a small batch (framing overhead dominates), the encoder's
// default, and a large batch (payload throughput dominates).
var DefaultWireBatchSizes = []int{64, event.DefaultBatchSize, 8192}

// wireCodecs is the codec sweep: every row of the micro-bench and the
// loopback bench is measured once per negotiated codec.
var wireCodecs = []int{wire.CodecPacked, wire.CodecColumnar}

// WireCodecRow is one (codec, batch size) cell of the encode/decode
// micro-bench: how fast a batch can be framed and how fast a frame can be
// decoded back into a pooled batch, with no network or detector in the
// path.
type WireCodecRow struct {
	Codec         string  `json:"codec"`
	BatchRecs     int     `json:"batch_recs"`
	FrameBytes    int     `json:"frame_bytes"`
	BytesPerEvent float64 `json:"bytes_per_event"`
	// VsPacked is this row's frame size relative to the packed (v1)
	// encoding of the same batch — the compression factor the columnar
	// codec buys (1.0 for v1 rows by construction).
	VsPacked float64 `json:"vs_packed"`
	// EncodeEventsPerSec / DecodeEventsPerSec are record throughputs of
	// AppendBatchFrameCodec and ReadFrame+DecodeBatchCodec respectively.
	EncodeEventsPerSec float64 `json:"encode_events_per_sec"`
	DecodeEventsPerSec float64 `json:"decode_events_per_sec"`
	EncodeMBPerSec     float64 `json:"encode_mb_per_sec"`
	DecodeMBPerSec     float64 `json:"decode_mb_per_sec"`
}

// wireBenchRecs builds a deterministic batch of n records shaped like a
// real instrumented execution rather than white noise: threads run in
// scheduling bursts (runs of equal tids), each burst walks one buffer
// with a small fixed stride from a hot loop PC, and sequence numbers
// increase monotonically. This is the locality of the PARSEC-style
// workloads (pipeline stages scanning media buffers) and the structure
// the columnar delta-varint codec is designed around; a uniform-random
// stream would measure the codec's worst case, which no instrumented
// program produces.
func wireBenchRecs(n int, seed int64) []event.Rec {
	rng := rand.New(rand.NewSource(seed))
	const threads = 8
	type cursor struct {
		addr   uint64
		pc     event.PC
		stride uint64
		size   uint32
	}
	cur := make([]cursor, threads)
	for t := range cur {
		cur[t] = cursor{
			addr:   0x10000 + uint64(t)<<20,
			pc:     event.PC(0x400000 + rng.Intn(64)*4),
			stride: 4,
			size:   4,
		}
	}
	recs := make([]event.Rec, n)
	tid, left := 0, 0
	for i := range recs {
		if left == 0 {
			// New scheduling burst: another thread runs for a while.
			tid = rng.Intn(threads)
			left = 16 + rng.Intn(48)
			if rng.Intn(4) == 0 {
				// The thread entered a new loop: fresh buffer, fresh
				// hot PC, possibly a different element width.
				c := &cur[tid]
				c.addr = 0x10000 + uint64(rng.Intn(1<<12))<<8
				c.pc = event.PC(0x400000 + rng.Intn(64)*4)
				if rng.Intn(2) == 0 {
					c.stride, c.size = 8, 8
				} else {
					c.stride, c.size = 4, 4
				}
			}
		}
		left--
		c := &cur[tid]
		op := event.OpRead
		if i%3 == 0 {
			op = event.OpWrite
		}
		recs[i] = event.Rec{
			Op: op, Tid: vc.TID(tid), Addr: c.addr,
			Size: c.size, PC: c.pc, Seq: uint64(i),
		}
		c.addr += c.stride
	}
	return recs
}

// WireCodecBench measures frame encode and decode throughput for each
// (codec, batch size) pair, without touching the network.
func WireCodecBench(batchSizes []int) []WireCodecRow {
	if len(batchSizes) == 0 {
		batchSizes = DefaultWireBatchSizes
	}
	const target = 50 * time.Millisecond
	rows := make([]WireCodecRow, 0, len(wireCodecs)*len(batchSizes))
	for _, n := range batchSizes {
		b := &event.Batch{Recs: wireBenchRecs(n, int64(n))}
		h := wire.Header{Session: 1}
		packedLen := len(wire.AppendBatchFrameCodec(nil, h, b, wire.CodecPacked))
		for _, codec := range wireCodecs {
			frame := wire.AppendBatchFrameCodec(nil, h, b, codec)

			// Encode: reuse the buffer, as the client's flush path does.
			buf := frame[:0]
			iters, elapsed := 0, time.Duration(0)
			for start := time.Now(); elapsed < target; elapsed = time.Since(start) {
				buf = wire.AppendBatchFrameCodec(buf[:0], h, b, codec)
				iters++
			}
			encEPS := float64(iters) * float64(n) / elapsed.Seconds()

			// Decode: batch decode into a pooled batch, as the server's
			// ingest path does.
			payload := frame[wire.HeaderSize:]
			iters, elapsed = 0, 0
			for start := time.Now(); elapsed < target; elapsed = time.Since(start) {
				got, err := wire.DecodeBatchCodec(payload, codec)
				if err != nil {
					panic(err)
				}
				event.PutBatch(got)
				iters++
			}
			decEPS := float64(iters) * float64(n) / elapsed.Seconds()

			perEvent := float64(len(frame)) / float64(n)
			rows = append(rows, WireCodecRow{
				Codec:              wire.CodecName(codec),
				BatchRecs:          n,
				FrameBytes:         len(frame),
				BytesPerEvent:      perEvent,
				VsPacked:           float64(len(frame)) / float64(packedLen),
				EncodeEventsPerSec: encEPS,
				DecodeEventsPerSec: decEPS,
				EncodeMBPerSec:     encEPS * perEvent / (1 << 20),
				DecodeMBPerSec:     decEPS * perEvent / (1 << 20),
			})
		}
	}
	return rows
}

// RemoteRow compares one benchmark run in-process against the same run
// streamed to a loopback racedetectd under one codec: the Overhead column
// is the cost of the wire protocol plus a process-boundary detector
// (lower bound, since loopback has no real network latency), and
// WireBytesPerEvent is the measured payload cost of the negotiated codec
// on the workload's real event stream.
type RemoteRow struct {
	Program       string  `json:"program"`
	Codec         string  `json:"codec"`
	LocalSeconds  float64 `json:"local_seconds"`
	RemoteSeconds float64 `json:"remote_seconds"`
	// Overhead is RemoteSeconds / LocalSeconds for the same seed and
	// granularity (local runs the serial detector).
	Overhead     float64 `json:"overhead"`
	EventsPerSec float64 `json:"events_per_sec"`
	Batches      uint64  `json:"batches"`
	// WireBytesPerEvent is batch payload bytes on the wire divided by
	// records streamed (37.0 for v1 by construction).
	WireBytesPerEvent float64 `json:"wire_bytes_per_event"`
	Races             int     `json:"races"`
}

// RemoteBench runs the runner's benchmarks at dynamic granularity through
// a loopback detection server once per codec — plus the in-process
// reference — and reports the remote overhead and on-wire cost. The
// loopback server lives for the duration of the sweep.
func (r *Runner) RemoteBench() ([]RemoteRow, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.New(server.Options{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	}()
	addr := l.Addr().String()

	var rows []RemoteRow
	for _, s := range r.specs {
		local := r.Report(s, race.Options{Granularity: race.Dynamic})
		prog := s.Build(r.cfg.Scale)
		for _, codec := range wireCodecs {
			var (
				remote race.Report
				reg    *telemetry.Registry
			)
			times := make([]time.Duration, 0, r.cfg.TimingRuns)
			for i := 0; i < r.cfg.TimingRuns; i++ {
				runtime.GC()
				reg = telemetry.New()
				remote, err = race.RunE(prog, race.Options{
					Granularity: race.Dynamic, Seed: r.cfg.Seed,
					Workers: 2, Remote: addr,
					Codec: wire.CodecName(codec), Telemetry: reg,
				})
				if err != nil {
					return nil, fmt.Errorf("%s/%s: remote run: %w", s.Name, wire.CodecName(codec), err)
				}
				times = append(times, remote.Elapsed)
			}
			row := RemoteRow{
				Program:      s.Name,
				Codec:        wire.CodecName(codec),
				LocalSeconds: local.Elapsed.Seconds(),
				Batches:      reg.CounterValue("client_batches_total"),
				Races:        len(remote.Races),
			}
			row.RemoteSeconds = bestDuration(times).Seconds()
			if row.LocalSeconds > 0 {
				row.Overhead = row.RemoteSeconds / row.LocalSeconds
			}
			if row.RemoteSeconds > 0 {
				row.EventsPerSec = float64(remote.Run.Events) / row.RemoteSeconds
			}
			if events := reg.CounterValue("client_events_total"); events > 0 {
				row.WireBytesPerEvent =
					float64(reg.CounterValue("wire_payload_bytes_total")) / float64(events)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// WireBenchJSON is the machine-readable BENCH_wire.json document: the
// codec micro-bench plus the loopback remote-overhead sweep, both
// measured per codec.
type WireBenchJSON struct {
	Config struct {
		Scale      int   `json:"scale"`
		Seed       int64 `json:"seed"`
		GOMAXPROCS int   `json:"gomaxprocs"`
		RecBytes   int   `json:"rec_bytes"`
		HeaderSize int   `json:"header_size"`
	} `json:"config"`
	Codec  []WireCodecRow `json:"codec"`
	Remote []RemoteRow    `json:"remote"`
}

// WriteWireJSON runs both wire benches and writes BENCH_wire.json.
func (r *Runner) WriteWireJSON(w io.Writer, batchSizes []int) error {
	var out WireBenchJSON
	out.Config.Scale = r.cfg.Scale
	out.Config.Seed = r.cfg.Seed
	out.Config.GOMAXPROCS = runtime.GOMAXPROCS(0)
	out.Config.RecBytes = wire.RecSize
	out.Config.HeaderSize = wire.HeaderSize
	out.Codec = WireCodecBench(batchSizes)
	rows, err := r.RemoteBench()
	if err != nil {
		return err
	}
	out.Remote = rows
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
