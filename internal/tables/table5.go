package tables

import (
	"fmt"
	"io"

	"repro/race"
)

// Row5 is one benchmark's row of Table 5: the state-machine ablations.
// Memory columns compare dynamic granularity without and with the
// temporary first-epoch sharing; race columns compare the detector without
// the Init state (one final sharing decision at first access — the
// false-alarm-prone variant) and with it.
type Row5 struct {
	Program          string
	MemNoInitShare   int64 // peak detector memory, no sharing at Init
	MemInitShare     int64 // peak detector memory, sharing at Init
	RacesNoInitState int   // reports without the Init state
	RacesInitState   int   // reports with the full state machine
}

// Table5 computes Table 5's rows.
func (r *Runner) Table5() []Row5 {
	rows := make([]Row5, 0, len(r.specs))
	for _, s := range r.specs {
		dyn := race.Options{Tool: race.FastTrack, Granularity: race.Dynamic}
		noShare := dyn
		noShare.NoInitSharing = true
		noState := dyn
		noState.NoInitState = true

		full := r.Report(s, dyn)
		rows = append(rows, Row5{
			Program:          s.Name,
			MemNoInitShare:   r.Report(s, noShare).Detector.TotalPeakBytes,
			MemInitShare:     full.Detector.TotalPeakBytes,
			RacesNoInitState: len(r.Report(s, noState).Races),
			RacesInitState:   len(full.Races),
		})
	}
	return rows
}

// RenderTable5 prints Table 5 in the paper's layout.
func (r *Runner) RenderTable5(w io.Writer) {
	rows := r.Table5()
	header := []string{
		"Program", "Mem no-share-at-Init", "Mem share-at-Init",
		"Races no-Init-state", "Races with-Init-state",
	}
	var out [][]string
	for _, row := range rows {
		out = append(out, []string{
			row.Program,
			mb(row.MemNoInitShare),
			mb(row.MemInitShare),
			fmt.Sprintf("%d", row.RacesNoInitState),
			fmt.Sprintf("%d", row.RacesInitState),
		})
	}
	writeTable(w, "Table 5. Comparisons of state machines with different configurations", header, out)
}
