// Observability overhead bench: the BENCH_obs.json generator. For each
// benchmark the harness runs the FastTrack detector twice per worker
// count — once with telemetry disabled (Options.Telemetry nil, the
// default) and once with a live metric registry attached — and reports
// the throughput of both plus the relative overhead. The disabled rows
// double as a regression guard: instrumented code paths must stay within
// a few percent of the pre-instrumentation pipeline (the "disabled is
// free" contract DESIGN.md §9 documents).
package tables

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"repro/internal/telemetry"
	"repro/race"
)

// DefaultObsWorkers is the worker sweep the overhead bench covers: the
// serial detector (where every counter increment is on the execution
// thread's critical path) and a small sharded pipeline (where the
// per-shard counters and queue gauge are exercised too).
var DefaultObsWorkers = []int{0, 2}

// ObsRow is one (benchmark, worker count) cell of the telemetry overhead
// sweep.
type ObsRow struct {
	Program string `json:"program"`
	// Workers is the detection worker count (0 = serial).
	Workers int `json:"workers"`
	// DisabledEventsPerSec is throughput with Options.Telemetry nil.
	DisabledEventsPerSec float64 `json:"disabled_events_per_sec"`
	// EnabledEventsPerSec is throughput with a live registry attached.
	EnabledEventsPerSec float64 `json:"enabled_events_per_sec"`
	// OverheadPct is (disabled − enabled) / disabled × 100 — how much
	// throughput turning the registry on costs. Noise makes small
	// negative values possible.
	OverheadPct float64 `json:"overhead_pct"`
	// Accesses is the telemetry registry's detector_accesses_total after
	// the enabled run — recorded so the JSON shows the instrumentation
	// actually observed the run it was measuring.
	Accesses uint64 `json:"accesses"`
	// Races is the race count, equal between the two runs by determinism.
	Races int `json:"races"`
}

// obsMeasure runs the benchmark TimingRuns times under opts — with a
// fresh metric registry per run when instrument is set, so counters stay
// per-run meaningful — and returns the last run's report, the best wall
// time, and the last run's registry (nil when not instrumenting). It
// bypasses the runner's report cache: overhead rows need freshly-timed
// pairs.
func (r *Runner) obsMeasure(prog race.Program, opts race.Options, instrument bool) (race.Report, time.Duration, *telemetry.Registry) {
	var rep race.Report
	times := make([]time.Duration, 0, r.cfg.TimingRuns)
	for i := 0; i < r.cfg.TimingRuns; i++ {
		runtime.GC() // isolate timed runs from each other's garbage
		if instrument {
			opts.Telemetry = telemetry.New()
		}
		rep = race.Run(prog, opts)
		times = append(times, rep.Elapsed)
	}
	return rep, bestDuration(times), opts.Telemetry
}

// ObsBench sweeps the telemetry overhead over the runner's benchmarks at
// dynamic granularity. Rows are grouped per benchmark in sweep order.
func (r *Runner) ObsBench(workerCounts []int) []ObsRow {
	if len(workerCounts) == 0 {
		workerCounts = DefaultObsWorkers
	}
	var rows []ObsRow
	for _, s := range r.specs {
		prog := s.Build(r.cfg.Scale)
		for _, w := range workerCounts {
			opts := race.Options{
				Tool:        race.FastTrack,
				Granularity: race.Dynamic,
				Seed:        r.cfg.Seed,
				Workers:     w,
			}
			repOff, dOff, _ := r.obsMeasure(prog, opts, false)
			repOn, dOn, reg := r.obsMeasure(prog, opts, true)

			row := ObsRow{
				Program: s.Name,
				Workers: w,
				Races:   len(repOn.Races),
			}
			if dOff > 0 {
				row.DisabledEventsPerSec = float64(repOff.Run.Events) / dOff.Seconds()
			}
			if dOn > 0 {
				row.EnabledEventsPerSec = float64(repOn.Run.Events) / dOn.Seconds()
			}
			if row.DisabledEventsPerSec > 0 {
				row.OverheadPct = 100 * (row.DisabledEventsPerSec - row.EnabledEventsPerSec) /
					row.DisabledEventsPerSec
			}
			row.Accesses = reg.CounterValue("detector_accesses_total")
			rows = append(rows, row)
		}
	}
	return rows
}

// ObsBenchJSON is the machine-readable BENCH_obs.json document.
type ObsBenchJSON struct {
	Config struct {
		Scale      int   `json:"scale"`
		Seed       int64 `json:"seed"`
		GOMAXPROCS int   `json:"gomaxprocs"`
	} `json:"config"`
	Rows []ObsRow `json:"rows"`
}

// WriteObsJSON runs the overhead sweep and writes BENCH_obs.json.
func (r *Runner) WriteObsJSON(w io.Writer, workerCounts []int) error {
	var out ObsBenchJSON
	out.Config.Scale = r.cfg.Scale
	out.Config.Seed = r.cfg.Seed
	out.Config.GOMAXPROCS = runtime.GOMAXPROCS(0)
	out.Rows = r.ObsBench(workerCounts)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
