package tables

import (
	"fmt"
	"io"

	"repro/race"
)

// Row3 is one benchmark's row of Table 3: the maximum number of vector
// clocks present during the run per granularity, and the average number of
// locations sharing one clock under dynamic granularity.
type Row3 struct {
	Program    string
	MaxVCs     [3]int64
	AvgSharing float64
}

// Table3 computes Table 3's rows.
func (r *Runner) Table3() []Row3 {
	rows := make([]Row3, 0, len(r.specs))
	for _, s := range r.specs {
		row := Row3{Program: s.Name}
		for gi, g := range granularities {
			st := r.Report(s, r.ftOpts(g)).Detector
			row.MaxVCs[gi] = st.MaxVectorClocks
			if g == race.Dynamic {
				row.AvgSharing = st.AvgSharing
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTable3 prints Table 3 in the paper's layout.
func (r *Runner) RenderTable3(w io.Writer) {
	rows := r.Table3()
	header := []string{"Program", "Byte", "Word", "Dynamic", "Avg sharing"}
	var out [][]string
	for _, row := range rows {
		out = append(out, []string{
			row.Program,
			fmt.Sprintf("%d", row.MaxVCs[0]),
			fmt.Sprintf("%d", row.MaxVCs[1]),
			fmt.Sprintf("%d", row.MaxVCs[2]),
			fmt.Sprintf("%.1f", row.AvgSharing),
		})
	}
	writeTable(w, "Table 3. Maximum number of vector clocks present", header, out)
}
