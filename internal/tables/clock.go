// Clock benchmark lane: the BENCH_clock.json generator — the trajectory of
// the structure-aware clock layer that future PRs are measured against.
//
// For each Go-native workload (channel/WaitGroup/fork–join sync only, so
// every thread stays on the compact representation end to end) the harness
// runs the FastTrack detector serially under both thread-clock
// representations and records, per row:
//
//   - wall time per routed event (best of TimingRuns deterministic runs,
//     matching the timing discipline of the paper tables);
//   - the peak thread-clock footprint: dense vector-clock bytes in general
//     mode versus task/snapshot bytes in compact mode, both from the
//     detector's own exact accounting;
//   - the structure ledger (structured threads, demotions) and the race
//     count, plus a verdict-identity bit pinning that the compact row
//     reports exactly the general row's races.
//
// The lane is the regression surface for the compact layer: a PR that makes
// the compact rows slower or fatter than the general rows — or that
// perturbs a single race verdict — fails the gate in clock_test.go and the
// CI comparison over the committed BENCH_clock.json.
package tables

import (
	"encoding/json"
	"io"
	"reflect"
	"runtime"

	"repro/race"
)

// clockWorkloads lists the Go-native benchmarks the lane sweeps — the
// workloads whose sync surface keeps every thread structured (mirrors the
// goNative set pinned by the race-level equivalence suite).
var clockWorkloads = []string{"fanin", "workerpool", "pipedag"}

// ClockRow is one (workload, clock representation) cell of the clock lane.
type ClockRow struct {
	Program string `json:"program"`
	// Clock is "general" (dense vectors) or "compact" (task-tree layer).
	Clock   string `json:"clock"`
	Threads int    `json:"threads"`

	// Events is the number of instrumentation events routed; NsPerEvent is
	// ElapsedNs over Events — the lane's headline speed number.
	Events     uint64  `json:"events"`
	ElapsedNs  int64   `json:"elapsed_ns"`
	NsPerEvent float64 `json:"ns_per_event"`

	// PeakClockBytes is the representation's own peak thread-clock
	// footprint — the lane's headline memory number. Both sides use the
	// detector's exact object accounting, sampled at sync operations.
	PeakClockBytes int64 `json:"peak_clock_bytes"`

	// Structure ledger: how many threads finished on the compact
	// representation and how many demoted to dense vectors (both zero on
	// general rows, and demotions must be zero on these workloads).
	StructuredThreads uint64 `json:"structured_threads"`
	Demotions         uint64 `json:"demotions"`

	// Races pins detection; RacesIdentical asserts the row's full ordered
	// race report equals the general serial report of the same workload.
	Races          int  `json:"races"`
	RacesIdentical bool `json:"races_identical"`
}

// ClockBench sweeps the clock lane over the runner's Go-native benchmarks
// at dynamic granularity. Rows are grouped per workload in general, compact
// order.
func (r *Runner) ClockBench() []ClockRow {
	var rows []ClockRow
	for _, s := range r.specs {
		if !isClockWorkload(s.Name) {
			continue
		}
		gen := r.Report(s, race.Options{
			Tool: race.FastTrack, Granularity: race.Dynamic,
		})
		cmp := r.Report(s, race.Options{
			Tool: race.FastTrack, Granularity: race.Dynamic, Clock: race.ClockCompact,
		})
		rows = append(rows,
			clockRow(s.Name, s.Threads, "general", gen, gen.Detector.ClockGeneralPeakBytes, gen),
			clockRow(s.Name, s.Threads, "compact", cmp, cmp.Detector.ClockCompactPeakBytes, gen),
		)
	}
	return rows
}

func isClockWorkload(name string) bool {
	for _, w := range clockWorkloads {
		if w == name {
			return true
		}
	}
	return false
}

func clockRow(name string, threads int, mode string, rep race.Report, peak int64, gen race.Report) ClockRow {
	row := ClockRow{
		Program:           name,
		Clock:             mode,
		Threads:           threads,
		Events:            rep.Run.Events,
		ElapsedNs:         rep.Elapsed.Nanoseconds(),
		PeakClockBytes:    peak,
		StructuredThreads: rep.Detector.ClockStructuredThreads,
		Demotions:         rep.Detector.ClockDemotions,
		Races:             len(rep.Races),
		RacesIdentical:    reflect.DeepEqual(rep.Races, gen.Races),
	}
	if rep.Run.Events > 0 {
		row.NsPerEvent = float64(rep.Elapsed.Nanoseconds()) / float64(rep.Run.Events)
	}
	return row
}

// ClockBenchJSON is the machine-readable BENCH_clock.json document.
type ClockBenchJSON struct {
	Config struct {
		Scale      int   `json:"scale"`
		Seed       int64 `json:"seed"`
		TimingRuns int   `json:"timing_runs"`
		GOMAXPROCS int   `json:"gomaxprocs"`
	} `json:"config"`
	Rows []ClockRow `json:"rows"`
}

// WriteClockJSON runs the clock lane and writes BENCH_clock.json.
func (r *Runner) WriteClockJSON(w io.Writer) error {
	var out ClockBenchJSON
	out.Config.Scale = r.cfg.Scale
	out.Config.Seed = r.cfg.Seed
	out.Config.TimingRuns = r.cfg.TimingRuns
	out.Config.GOMAXPROCS = runtime.GOMAXPROCS(0)
	out.Rows = r.ClockBench()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
