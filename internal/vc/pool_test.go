// Edge-case tests for the pooled / copy-on-write / interned clock layer:
// refcount lifecycles that cross the intern table, COW splits observed by
// a concurrent reader (meaningful under -race), zero-value and nil-pool
// degradation, and the allocation-free guarantees the detector hot path
// depends on.
package vc

import (
	"sync"
	"testing"
)

// TestReleaseAfterIntern pins the canonical-holder refcount protocol: a
// clock released AFTER being interned must not free the canonical array
// out from under later holders, and a canonical must survive until its
// last outside holder is gone, then be reclaimable by Prune.
func TestReleaseAfterIntern(t *testing.T) {
	p := NewPool()
	it := NewInterner(p)

	v := p.Get(4)
	v.Set(0, 7)
	v.Set(2, 9)
	v = it.Intern(v) // miss: v kept, canonical snapshot stored (refs: v + table)
	if it.Len() != 1 || it.Hits() != 0 {
		t.Fatalf("after miss: len=%d hits=%d, want 1, 0", it.Len(), it.Hits())
	}

	w := p.Get(4)
	w.Set(0, 7)
	w.Set(2, 9)
	w = it.Intern(w) // hit: w's storage recycled, returns a share of the canonical
	if it.Hits() != 1 {
		t.Fatalf("hits=%d, want 1", it.Hits())
	}
	if !w.Equal(v) {
		t.Fatalf("interned clock %v != original %v", w, v)
	}

	v.Release() // release the original AFTER interning
	if got := w.Get(2); got != 9 {
		t.Fatalf("canonical array damaged by release: w[2]=%d, want 9", got)
	}

	// Mutating a holder must copy-on-write away, leaving the canonical
	// (and every other holder) untouched.
	x := it.Intern(func() *VC { n := p.Get(4); n.Set(0, 7); n.Set(2, 9); return n }())
	w.Set(1, 100)
	if got := x.Get(1); got != 0 {
		t.Fatalf("mutation leaked into canonical: x[1]=%d, want 0", got)
	}

	// Drop all outside holders: the canonical's refcount falls back to the
	// table's own share and Prune reclaims it.
	w.Release()
	x.Release()
	it.Prune()
	if it.Len() != 0 {
		t.Fatalf("after releasing all holders, Prune left %d canonicals", it.Len())
	}
}

// TestCOWSplitWithConcurrentReader holds a clone on another goroutine that
// reads the shared array while the owner mutates. owned() must split to a
// private array before writing, so under -race this test proves the COW
// discipline never writes a shared array.
func TestCOWSplitWithConcurrentReader(t *testing.T) {
	p := NewPool()
	v := p.Get(8)
	for i := TID(0); i < 8; i++ {
		v.Set(i, Clock(i+1))
	}
	c := v.CloneIn(nil) // reader's view: heap-bound header, shared array

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := TID(0); i < 8; i++ {
				if got := c.Get(i); got != Clock(i+1) {
					t.Errorf("clone observed owner's mutation: c[%d]=%d", i, got)
					return
				}
			}
		}
	}()
	for k := 0; k < 1000; k++ {
		v.Inc(0) // first Inc splits off a private copy; the rest mutate it
	}
	close(stop)
	wg.Wait()
	if v.Get(0) != 1001 || c.Get(0) != 1 {
		t.Fatalf("post-split values: v[0]=%d (want 1001), c[0]=%d (want 1)", v.Get(0), c.Get(0))
	}
}

// TestZeroValueRoundTrips checks that the zero VC, nil pools, and
// pool-less clocks keep full semantics: the memory layer must be purely
// an optimization.
func TestZeroValueRoundTrips(t *testing.T) {
	var v VC // zero value, no pool
	v.Set(3, 5)
	if v.Get(3) != 5 || v.Len() != 4 {
		t.Fatalf("zero-value Set/Get: got %v", &v)
	}
	c := v.Clone()
	c.Inc(3)
	if v.Get(3) != 5 || c.Get(3) != 6 {
		t.Fatalf("zero-value COW: v=%v c=%v", &v, c)
	}
	v.Release() // no pool: must be a safe no-op
	c.Release()
	(*VC)(nil).Release() // nil receiver: safe

	var nilPool *Pool
	g := nilPool.Get(4) // nil pool degrades to plain allocation
	g.Set(0, 1)
	nilPool.Put(g) // and Put drops to the GC without panicking
	if h, m := nilPool.Stats(); h != 0 || m != 0 {
		t.Fatalf("nil pool stats: %d/%d", h, m)
	}

	p := NewPool()
	w := p.Get(4)
	w.Set(1, 2)
	p.Put(w)
	r := p.Get(4) // recycled array must read as the empty clock
	for i := TID(0); i < 4; i++ {
		if r.Get(i) != 0 {
			t.Fatalf("recycled slice not zeroed: [%d]=%d", i, r.Get(i))
		}
	}
	if hits, _ := p.Stats(); hits == 0 {
		t.Fatal("recycle did not register a pool hit")
	}
}

// TestEpochLEQZeroAlloc pins the FastTrack same-epoch comparison — the
// single hottest operation in the detector — at zero allocations.
func TestEpochLEQZeroAlloc(t *testing.T) {
	v := New(8)
	for i := TID(0); i < 8; i++ {
		v.Set(i, 10)
	}
	e := MakeEpoch(3, 7)
	if got := testing.AllocsPerRun(100, func() {
		if !e.LEQ(v) {
			t.Fatal("7@3 should be ≤ [10,10,...]")
		}
	}); got != 0 {
		t.Fatalf("Epoch.LEQ: %v allocs/run, want 0", got)
	}
}

// TestJoinEqualLengthZeroAlloc pins the equal-length Join fast path (lock
// release/acquire between long-lived threads) at zero allocations, with
// componentwise-max semantics intact.
func TestJoinEqualLengthZeroAlloc(t *testing.T) {
	p := NewPool()
	a, b := p.Get(8), p.Get(8)
	for i := TID(0); i < 8; i++ {
		a.Set(i, Clock(10+i))
		b.Set(i, Clock(17-i))
	}
	if got := testing.AllocsPerRun(100, func() { a.Join(b) }); got != 0 {
		t.Fatalf("equal-length Join: %v allocs/run, want 0", got)
	}
	for i := TID(0); i < 8; i++ {
		want := Clock(10 + i)
		if w := Clock(17 - i); w > want {
			want = w
		}
		if a.Get(i) != want {
			t.Fatalf("join[%d]=%d, want %d", i, a.Get(i), want)
		}
	}
}

// TestInternerCollisionAndLimit covers the two degradation paths: a hash
// collision with unequal content must miss (first-come canonical kept),
// and a saturated table must pass clocks through unchanged rather than
// evicting live canonicals.
func TestInternerCollisionAndLimit(t *testing.T) {
	p := NewPool()
	it := NewInterner(p)
	it.limit = 2

	mk := func(t0 Clock) *VC { v := p.Get(2); v.Set(0, t0); return v }
	a := it.Intern(mk(1))
	b := it.Intern(mk(2))
	if it.Len() != 2 {
		t.Fatalf("len=%d, want 2", it.Len())
	}
	c := mk(3)
	got := it.Intern(c) // table full of live canonicals: pass-through
	if got != c || it.Len() != 2 {
		t.Fatalf("saturated intern: got %p want %p, len=%d", got, c, it.Len())
	}
	// Free one canonical's holders; the next insert prunes and succeeds.
	a.Release()
	d := mk(4)
	if it.Intern(d) != d {
		t.Fatal("miss must return the caller's clock")
	}
	if it.Len() != 2 {
		t.Fatalf("after prune+insert: len=%d, want 2", it.Len())
	}
	b.Release()
	c.Release()
	d.Release()
}
