package vc

import "testing"

func BenchmarkJoin(b *testing.B) {
	x := FromSlice(1, 2, 3, 4, 5, 6, 7, 8)
	y := FromSlice(8, 7, 6, 5, 4, 3, 2, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Join(y)
	}
}

func BenchmarkLEQ(b *testing.B) {
	x := FromSlice(1, 2, 3, 4, 5, 6, 7, 8)
	y := FromSlice(8, 7, 6, 5, 4, 3, 2, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.LEQ(y)
	}
}

func BenchmarkEpochLEQ(b *testing.B) {
	e := MakeEpoch(3, 17)
	v := FromSlice(1, 2, 3, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.LEQ(v)
	}
}

func BenchmarkEpochPacking(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := MakeEpoch(TID(i&7), Clock(i))
		_ = e.TID() + TID(e.Clock())
	}
}
