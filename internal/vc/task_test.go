package vc

import (
	"math/rand"
	"testing"
)

// mirror pairs a Task with the general vector clock the same operation
// sequence builds, for pointwise differential checks.
type mirror struct {
	k *Task
	v *VC
}

// snapVal pairs a published snapshot with the dense clone a general-mode
// publication would have queued.
type snapVal struct {
	s *Snap
	v *VC
}

func checkMirror(t *testing.T, step int, ms []mirror) {
	t.Helper()
	for _, m := range ms {
		for u := 0; u < len(ms); u++ {
			if got, want := m.k.Get(TID(u)), m.v.Get(TID(u)); got != want {
				t.Fatalf("step %d: task %d: Get(%d) = %d, general says %d",
					step, m.k.TID(), u, got, want)
			}
		}
	}
}

// TestTaskDifferentialRandom drives random publish/absorb/join sequences
// through the compact representation and a general vector-clock mirror and
// demands pointwise-equal Get at every step — the verdict-preservation
// property the detector relies on, exercised over interleavings (base
// swaps, delta chains, in-place merges, chain folds) no fixed workload
// pins down.
func TestTaskDifferentialRandom(t *testing.T) {
	const threads = 9
	const steps = 4000
	rng := rand.New(rand.NewSource(7))

	a := NewArena()
	ms := make([]mirror, threads)
	for i := range ms {
		ms[i] = mirror{k: a.NewTask(TID(i), nil), v: New(threads)}
		ms[i].v.Set(TID(i), 1)
	}
	var queue []snapVal
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // publish
			m := ms[rng.Intn(threads)]
			queue = append(queue, snapVal{s: m.k.Publish(), v: m.v.Clone()})
			m.v.Inc(m.k.TID())
		case op < 8 && len(queue) > 0: // absorb a random queued publication
			i := rng.Intn(len(queue))
			m := ms[rng.Intn(threads)]
			m.k.Absorb(queue[i].s)
			m.v.Join(queue[i].v)
		case len(queue) > 0: // release a random queued publication
			i := rng.Intn(len(queue))
			a.Release(queue[i].s)
			queue[i] = queue[len(queue)-1]
			queue = queue[:len(queue)-1]
		}
		if step%97 == 0 {
			checkMirror(t, step, ms)
		}
	}
	// Terminal snapshots: every thread joins into thread 0.
	for _, m := range ms[1:] {
		f := m.k.Final()
		ms[0].k.Absorb(f)
		ms[0].v.Join(m.v)
		a.Release(f)
	}
	checkMirror(t, steps, ms)

	// MaterializeInto must rebuild the same dense value.
	for _, m := range ms {
		v := New(threads)
		m.k.MaterializeInto(v)
		for u := 0; u < threads; u++ {
			if v.Get(TID(u)) != m.v.Get(TID(u)) {
				t.Fatalf("materialized task %d differs at %d", m.k.TID(), u)
			}
		}
	}

	// Everything released: the arena must account zero live bytes.
	for _, sv := range queue {
		a.Release(sv.s)
	}
	for _, m := range ms {
		a.FreeTask(m.k)
	}
	if n := a.LiveBytes(); n != 0 {
		t.Errorf("arena leaks %d bytes after releasing everything", n)
	}
}

// TestChainStaysCompact replays the hub-and-spoke channel pattern (one
// receiver, many senders over a bounded queue, slot-reuse back edges) and
// pins the property the chain folds exist for: live compact state stays a
// small multiple of the thread count, not of the publication count — a
// regression guard against publication history piling up in the snapshot
// chains.
func TestChainStaysCompact(t *testing.T) {
	const workers = 48
	const rounds = 200
	const capacity = 8

	a := NewArena()
	hub := a.NewTask(0, nil)
	spokes := make([]*Task, workers)
	for w := range spokes {
		spokes[w] = a.NewTask(TID(w+1), hub.Publish())
	}
	var sendq, recvq []*Snap
	sends := 0
	for r := 0; r < rounds; r++ {
		for _, sp := range spokes {
			if sends >= capacity {
				s := recvq[0]
				recvq = recvq[1:]
				sp.Absorb(s)
				a.Release(s)
			}
			sends++
			sendq = append(sendq, sp.Publish())
			s := sendq[0]
			sendq = sendq[1:]
			hub.Absorb(s)
			a.Release(s)
			recvq = append(recvq, hub.Publish())
		}
	}
	// Generous linear budget: a few snapshots' worth of state per thread.
	// Publication count is 100x larger; history piling up blows way past it.
	budget := int64((workers + 1) * 6 * (snapHdrBytes + taskHdrBytes))
	if live := a.LiveBytes(); live > budget {
		t.Errorf("live compact state %dB exceeds linear budget %dB after %d publications",
			live, budget, 2*workers*rounds)
	}
	if peak := a.PeakBytes(); peak > 2*budget {
		t.Errorf("peak compact state %dB exceeds budget %dB", peak, 2*budget)
	}
}
