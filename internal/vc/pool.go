// Allocation-lean clock storage: a size-classed pool for vector-clock
// backing arrays and headers, copy-on-write sharing with refcounts, and an
// intern table for high-multiplicity clocks.
//
// The paper wins its Table 2 memory numbers by making many locations share
// one vector clock; this file makes the *allocator* see that sharing too.
// Three mechanisms compose:
//
//   - Pool recycles backing arrays in power-of-two size classes and VC
//     headers, so the split/inflate/release churn of the dynamic-granularity
//     state machine stops reaching the Go heap. A Pool is single-owner (one
//     detector shard = one goroutine = one Pool) and therefore lock-free.
//   - Clone/CloneIn are copy-on-write: the copy shares the backing array
//     under an atomic refcount and any mutator unshares first (owned()).
//     Refcounts are atomic so shares may be *held* and released across
//     goroutines even though each Pool stays single-owner.
//   - Interner deduplicates equal clocks behind canonical shared arrays:
//     read-vector inflation creates the same small vector for every element
//     of an initialize-then-read region, and interning folds them into one
//     array per distinct logical time.
//
// All of it is optional: a nil *Pool and nil *Interner degrade to plain
// heap allocation with identical semantics, so the zero VC value and
// pre-pool call sites keep working unchanged.
package vc

import "sync/atomic"

const (
	// poolClasses size classes cover capacities 4, 8, ..., 512 components.
	// Clocks are indexed by thread id, and the simulated suites run tens of
	// threads at most; 512 is headroom, beyond it the heap serves directly.
	poolClasses = 8
	poolMinCap  = 4
	poolMaxCap  = poolMinCap << (poolClasses - 1)
)

// classFor returns the smallest size class whose capacity holds n
// components; the caller has checked n <= poolMaxCap.
func classFor(n int) int {
	c, capc := 0, poolMinCap
	for capc < n {
		capc <<= 1
		c++
	}
	return c
}

// shared is the refcount header of a copy-on-write backing array. refs
// counts the VC headers currently aliasing the array (including an intern
// table's canonical holder). It is manipulated atomically so shares can be
// released from a goroutine other than the pool owner's.
type shared struct{ refs int32 }

// Pool recycles vector-clock storage for one owner goroutine. The zero
// value is ready to use; a nil *Pool is valid and degrades every operation
// to plain allocation (or, for Put, to dropping the value for the GC).
type Pool struct {
	slices [poolClasses][][]Clock
	hdrs   []*VC
	shs    []*shared

	hits, misses uint64
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Stats returns how many backing-array requests the pool served from its
// freelists (hits) versus fresh heap allocations (misses).
func (p *Pool) Stats() (hits, misses uint64) {
	if p == nil {
		return 0, 0
	}
	return p.hits, p.misses
}

// rawSlice returns a zeroed slice of length n from the pool (or the heap
// for a nil pool / oversize request).
func (p *Pool) rawSlice(n int) []Clock {
	if p == nil || n > poolMaxCap {
		if p != nil {
			p.misses++
		}
		return make([]Clock, n)
	}
	c := classFor(n)
	if k := len(p.slices[c]); k > 0 {
		s := p.slices[c][k-1]
		p.slices[c][k-1] = nil
		p.slices[c] = p.slices[c][:k-1]
		p.hits++
		return s[:n]
	}
	p.misses++
	return make([]Clock, n, poolMinCap<<c)
}

// putSlice recycles a backing array, zeroing it first so every pooled
// slice reads as the empty clock (grow exposes capacity without copying).
func (p *Pool) putSlice(s []Clock) {
	if p == nil || cap(s) < poolMinCap || cap(s) > poolMaxCap {
		return
	}
	s = s[:cap(s)]
	for i := range s {
		s[i] = 0
	}
	// cap(s) may sit between classes when the slice was not pool-born;
	// store it in the class it can fully serve.
	c, capc := 0, poolMinCap
	for capc*2 <= cap(s) && c+1 < poolClasses {
		capc *= 2
		c++
	}
	p.slices[c] = append(p.slices[c], s[:0])
}

// hdr returns a recycled (or fresh) VC header bound to the pool.
func (p *Pool) hdr() *VC {
	if p == nil {
		return &VC{}
	}
	if k := len(p.hdrs); k > 0 {
		v := p.hdrs[k-1]
		p.hdrs[k-1] = nil
		p.hdrs = p.hdrs[:k-1]
		return v
	}
	return &VC{pool: p}
}

func (p *Pool) putHdr(v *VC) {
	if p == nil {
		return
	}
	v.c, v.sh, v.pool = nil, nil, p
	p.hdrs = append(p.hdrs, v)
}

// dropShare releases one reference to sh on behalf of a holder that has
// just split off (or discarded) its view of the shared array c. When the
// last reference dies the array and the refcount header are recycled
// through p. Passing a nil c leaves the array to the GC.
func (p *Pool) dropShare(sh *shared, c []Clock) {
	if atomic.AddInt32(&sh.refs, -1) > 0 {
		return
	}
	p.putSlice(c)
	p.putShared(sh)
}

// newShared returns a refcount header with refs = 1.
func (p *Pool) newShared() *shared {
	if p != nil {
		if k := len(p.shs); k > 0 {
			sh := p.shs[k-1]
			p.shs[k-1] = nil
			p.shs = p.shs[:k-1]
			sh.refs = 1
			return sh
		}
	}
	return &shared{refs: 1}
}

func (p *Pool) putShared(sh *shared) {
	if p == nil {
		return
	}
	p.shs = append(p.shs, sh)
}

// Get returns an empty clock with pooled capacity for n threads, bound to
// the pool so later growth and copy-on-write splits recycle through it.
// A nil pool yields a plain heap clock (identical to New).
func (p *Pool) Get(n int) *VC {
	v := p.hdr()
	v.c = p.rawSlice(n)[:0]
	return v
}

// Put releases a clock back to the pool. Shared backing arrays are
// refcounted: the array is recycled only when the last holder releases it;
// the header is recycled immediately. Put accepts any *VC — including nil,
// the zero value, and clocks born outside the pool — so release sites need
// no provenance checks.
func (p *Pool) Put(v *VC) {
	if v == nil {
		return
	}
	c, sh := v.c, v.sh
	v.c, v.sh = nil, nil
	if sh != nil {
		if atomic.AddInt32(&sh.refs, -1) > 0 {
			p.putHdr(v) // array still aliased elsewhere
			return
		}
		p.putShared(sh)
	}
	p.putSlice(c)
	p.putHdr(v)
}

// ---- copy-on-write plumbing on VC ----

// refs returns the alias count of v's backing array (1 when unshared).
func (v *VC) refs() int32 {
	if v.sh == nil {
		return 1
	}
	return atomic.LoadInt32(&v.sh.refs)
}

// owned makes v safe to mutate: if the backing array is aliased by another
// holder, v splits off a private copy first (through its pool when bound).
// Every mutating method calls it; for unshared clocks it is two predictable
// branches.
func (v *VC) owned() {
	sh := v.sh
	if sh == nil || atomic.LoadInt32(&sh.refs) == 1 {
		return
	}
	c := v.pool.rawSlice(len(v.c))
	old := v.c
	copy(c, old)
	v.c = c
	v.sh = nil
	// If we turn out to hold the last reference (a release raced with the
	// split), recycle the old array and header; the caller's goroutine owns
	// v.pool, so pushing onto its freelists is safe.
	v.pool.dropShare(sh, old)
}

// CloneIn returns a copy of v sharing v's backing array copy-on-write,
// with the copy's future allocations served by pool p (nil = heap). The
// clone observes v's value at call time: whichever side mutates first
// splits off its own array.
func (v *VC) CloneIn(p *Pool) *VC {
	n := p.hdr()
	n.pool = p
	if len(v.c) == 0 {
		return n
	}
	if v.sh == nil {
		v.sh = v.pool.newShared()
	}
	atomic.AddInt32(&v.sh.refs, 1)
	n.c = v.c
	n.sh = v.sh
	return n
}

// share adds one reference to v's backing array (creating the refcount
// header on first share) — the intern table's canonical-holder hook.
func (v *VC) share() {
	if v.sh == nil {
		v.sh = v.pool.newShared()
	}
	atomic.AddInt32(&v.sh.refs, 1)
}

// Release returns v to the pool it was allocated from; clocks born outside
// any pool are left to the garbage collector. Safe on nil.
func (v *VC) Release() {
	if v == nil || v.pool == nil {
		return
	}
	v.pool.Put(v)
}

// contentHash hashes the clock's logical value (FNV-1a over components,
// trailing zeros excluded so clocks equal under Equal hash equal).
func (v *VC) contentHash() uint64 {
	n := len(v.c)
	for n > 0 && v.c[n-1] == 0 {
		n--
	}
	h := uint64(1469598103934665603)
	for i := 0; i < n; i++ {
		h ^= uint64(v.c[i])
		h *= 1099511628211
	}
	return h
}

// ---- interning ----

// defaultInternLimit bounds the intern table; past it, Intern prunes
// dead canonicals and stops inserting while the table stays full.
const defaultInternLimit = 4096

// Interner deduplicates equal clocks behind canonical shared arrays. Like
// Pool it is single-owner; a nil *Interner is valid and interns nothing.
//
// Invariant: a canonical array is immutable while any holder aliases it —
// holders get their own VC headers (never the table's), so a holder's
// mutation copy-on-writes away and the canonical content (and its hash
// key) stays fixed.
type Interner struct {
	pool  *Pool
	m     map[uint64]*VC
	limit int
	hits  uint64
}

// NewInterner returns an interner recycling through p (which may be nil).
func NewInterner(p *Pool) *Interner {
	return &Interner{pool: p, m: make(map[uint64]*VC), limit: defaultInternLimit}
}

// Hits returns how many clocks were deduplicated against a canonical.
func (it *Interner) Hits() uint64 {
	if it == nil {
		return 0
	}
	return it.hits
}

// Len returns the number of canonical clocks currently held.
func (it *Interner) Len() int {
	if it == nil {
		return 0
	}
	return len(it.m)
}

// Intern returns a clock equal to v backed by a canonical shared array.
// On a hit the caller's v is released to the pool and a fresh header
// sharing the canonical array is returned; on a miss v itself is returned
// and a snapshot share of it is stored as the new canonical. Hash
// collisions with unequal content simply miss.
func (it *Interner) Intern(v *VC) *VC {
	if it == nil || v == nil {
		return v
	}
	h := v.contentHash()
	if c, ok := it.m[h]; ok {
		if c.Equal(v) {
			n := c.CloneIn(it.pool)
			it.pool.Put(v)
			it.hits++
			return n
		}
		return v // collision, different value: keep first-come canonical
	}
	if len(it.m) >= it.limit {
		it.Prune()
		if len(it.m) >= it.limit {
			return v // table saturated with live clocks
		}
	}
	it.m[h] = v.CloneIn(it.pool)
	return v
}

// Prune drops canonicals no live holder aliases anymore (refcount 1 = the
// table's own share) and recycles their storage.
func (it *Interner) Prune() {
	if it == nil {
		return
	}
	for h, c := range it.m {
		if c.refs() == 1 {
			delete(it.m, h)
			it.pool.Put(c)
		}
	}
}
