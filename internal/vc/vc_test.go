package vc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEpochPackingRoundtrip(t *testing.T) {
	cases := []struct {
		tid TID
		c   Clock
	}{
		{0, 1}, {1, 1}, {7, 42}, {255, 1 << 30}, {1000, 0xffffffff},
	}
	for _, tc := range cases {
		e := MakeEpoch(tc.tid, tc.c)
		if e.TID() != tc.tid || e.Clock() != tc.c {
			t.Errorf("MakeEpoch(%d,%d) round-tripped to (%d,%d)",
				tc.tid, tc.c, e.TID(), e.Clock())
		}
	}
}

func TestEpochNone(t *testing.T) {
	if !EpochNone.IsNone() {
		t.Error("EpochNone must report IsNone")
	}
	if MakeEpoch(0, 1).IsNone() {
		t.Error("1@0 must not be none")
	}
	v := FromSlice(0, 0)
	if !EpochNone.LEQ(v) {
		t.Error("the empty epoch happens before everything")
	}
}

func TestEpochLEQ(t *testing.T) {
	v := FromSlice(3, 1)
	if !MakeEpoch(0, 3).LEQ(v) {
		t.Error("3@0 ⊑ <3,1>")
	}
	if MakeEpoch(0, 4).LEQ(v) {
		t.Error("4@0 ⋢ <3,1>")
	}
	if MakeEpoch(2, 1).LEQ(v) {
		t.Error("1@2 ⋢ <3,1> (component missing means zero)")
	}
}

func TestEpochString(t *testing.T) {
	if got := MakeEpoch(2, 7).String(); got != "7@2" {
		t.Errorf("got %q", got)
	}
	if got := EpochNone.String(); got != "⊥" {
		t.Errorf("got %q", got)
	}
}

func TestGetBeyondLengthIsZero(t *testing.T) {
	v := New(2)
	if v.Get(5) != 0 {
		t.Error("unset component must read as zero")
	}
	if v.Get(-1) != 0 {
		t.Error("negative tid must read as zero")
	}
}

func TestSetGrows(t *testing.T) {
	v := New(0)
	v.Set(4, 9)
	if v.Get(4) != 9 || v.Len() != 5 {
		t.Errorf("Set did not grow correctly: len=%d get=%d", v.Len(), v.Get(4))
	}
	if v.Get(3) != 0 {
		t.Error("intermediate components must be zero")
	}
}

func TestInc(t *testing.T) {
	v := New(1)
	if got := v.Inc(2); got != 1 {
		t.Errorf("first Inc = %d, want 1", got)
	}
	if got := v.Inc(2); got != 2 {
		t.Errorf("second Inc = %d, want 2", got)
	}
}

func TestJoinTakesElementwiseMax(t *testing.T) {
	a := FromSlice(1, 5, 0)
	b := FromSlice(3, 2, 0, 7)
	a.Join(b)
	for i, want := range []Clock{3, 5, 0, 7} {
		if a.Get(TID(i)) != want {
			t.Errorf("a[%d] = %d, want %d", i, a.Get(TID(i)), want)
		}
	}
}

func TestAssignAndClone(t *testing.T) {
	a := FromSlice(1, 2, 3)
	b := a.Clone()
	b.Set(0, 9)
	if a.Get(0) != 1 {
		t.Error("Clone must be independent")
	}
	c := New(0)
	c.Assign(a)
	if !c.Equal(a) {
		t.Error("Assign must copy all components")
	}
	c.Set(1, 100)
	if a.Get(1) != 2 {
		t.Error("Assign must be independent")
	}
}

func TestLEQAndAnyGT(t *testing.T) {
	a := FromSlice(1, 2)
	b := FromSlice(2, 2)
	if !a.LEQ(b) || b.LEQ(a) {
		t.Error("<1,2> ≤ <2,2> strictly")
	}
	if got := b.AnyGT(a); got != 0 {
		t.Errorf("AnyGT = %d, want 0", got)
	}
	if got := a.AnyGT(b); got != NoTID {
		t.Errorf("AnyGT = %d, want NoTID", got)
	}
}

func TestEqualIgnoresTrailingZeros(t *testing.T) {
	a := FromSlice(1, 2)
	b := FromSlice(1, 2, 0, 0)
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("trailing zeros are semantically identical")
	}
	c := FromSlice(1, 2, 1)
	if a.Equal(c) {
		t.Error("differing component must compare unequal")
	}
}

func TestReset(t *testing.T) {
	a := FromSlice(1, 2, 3)
	a.Reset()
	if a.Len() != 0 || a.Get(1) != 0 {
		t.Error("Reset must clear all components")
	}
}

func TestString(t *testing.T) {
	if got := FromSlice(2, 1).String(); got != "<2, 1>" {
		t.Errorf("got %q", got)
	}
}

// ---- Property tests (testing/quick) ----

// genVC builds a small random clock from quick's fuzz values.
func genVC(vals []uint16) *VC {
	v := New(len(vals))
	for i, x := range vals {
		v.Set(TID(i), Clock(x))
	}
	return v
}

func TestQuickJoinCommutative(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		if len(xs) > 8 {
			xs = xs[:8]
		}
		if len(ys) > 8 {
			ys = ys[:8]
		}
		a1, b1 := genVC(xs), genVC(ys)
		a2, b2 := genVC(xs), genVC(ys)
		a1.Join(b1) // a ⊔ b
		b2.Join(a2) // b ⊔ a
		return a1.Equal(b2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinAssociativeAndIdempotent(t *testing.T) {
	f := func(xs, ys, zs []uint16) bool {
		if len(xs) > 8 {
			xs = xs[:8]
		}
		if len(ys) > 8 {
			ys = ys[:8]
		}
		if len(zs) > 8 {
			zs = zs[:8]
		}
		// (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)
		l := genVC(xs)
		l.Join(genVC(ys))
		l.Join(genVC(zs))
		rbc := genVC(ys)
		rbc.Join(genVC(zs))
		r := genVC(xs)
		r.Join(rbc)
		if !l.Equal(r) {
			return false
		}
		// a ⊔ a == a
		a := genVC(xs)
		a.Join(genVC(xs))
		return a.Equal(genVC(xs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinIsLeastUpperBound(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		if len(xs) > 8 {
			xs = xs[:8]
		}
		if len(ys) > 8 {
			ys = ys[:8]
		}
		a, b := genVC(xs), genVC(ys)
		j := a.Clone()
		j.Join(b)
		return a.LEQ(j) && b.LEQ(j)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickLEQPartialOrder(t *testing.T) {
	f := func(xs, ys, zs []uint16) bool {
		if len(xs) > 8 {
			xs = xs[:8]
		}
		if len(ys) > 8 {
			ys = ys[:8]
		}
		if len(zs) > 8 {
			zs = zs[:8]
		}
		a, b, c := genVC(xs), genVC(ys), genVC(zs)
		// Reflexive.
		if !a.LEQ(a) {
			return false
		}
		// Antisymmetric.
		if a.LEQ(b) && b.LEQ(a) && !a.Equal(b) {
			return false
		}
		// Transitive.
		if a.LEQ(b) && b.LEQ(c) && !a.LEQ(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickEpochLEQAgreesWithVC(t *testing.T) {
	// e.LEQ(v) must agree with treating the epoch as a one-component clock.
	f := func(tid uint8, c uint16, xs []uint16) bool {
		if len(xs) > 8 {
			xs = xs[:8]
		}
		if c == 0 {
			c = 1
		}
		e := MakeEpoch(TID(tid%8), Clock(c))
		v := genVC(xs)
		asVC := New(8)
		asVC.Set(e.TID(), e.Clock())
		return e.LEQ(v) == asVC.LEQ(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGrowPreservesValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := New(0)
	ref := map[TID]Clock{}
	for i := 0; i < 1000; i++ {
		tid := TID(rng.Intn(200))
		c := Clock(rng.Uint32())
		v.Set(tid, c)
		ref[tid] = c
		for k, want := range ref {
			if v.Get(k) != want {
				t.Fatalf("after %d ops: v[%d]=%d, want %d", i, k, v.Get(k), want)
			}
		}
	}
}
