// Package vc implements the logical-time machinery underlying
// happens-before data race detection: growable vector clocks (Fidge/Mattern
// style, indexed by thread id) and FastTrack's packed epoch representation
// "c@t" that records a single (clock, thread) pair in one word.
//
// The conventions follow DJIT+ and FastTrack as described in Sections II–III
// of Song & Lee, "Efficient Data Race Detection for C/C++ Programs Using
// Dynamic Granularity" (IPPS 2014):
//
//   - Every thread t owns a vector clock T_t; T_t[t] is incremented at the
//     start of each new epoch (after every lock release).
//   - A lock s owns a vector clock L_s; release does L_s := L_s ⊔ T_t,
//     acquire does T_t := T_t ⊔ L_s.
//   - An access history entry is either a full vector clock or an epoch.
//
// Vector clocks grow on demand: index i beyond the current length reads as
// zero, so a clock over few threads stays small even in programs that later
// spawn many threads.
package vc

import (
	"fmt"
	"strings"
)

// TID identifies a virtual thread. Thread ids are small dense integers
// assigned in spawn order, which lets vector clocks be plain slices.
type TID int32

// Clock is a scalar logical clock value for one thread.
type Clock uint32

// NoTID marks an epoch that has no owner (e.g. "never written").
const NoTID TID = -1

// Epoch is FastTrack's packed last-access representation c@t: the upper 32
// bits hold the clock c, the lower 32 bits the thread id t. The zero Epoch
// is 0@0, which FastTrack treats as "no access yet" for writes because real
// accesses always carry clock ≥ 1 (threads start at clock 1).
type Epoch uint64

// MakeEpoch packs clock c of thread t into an Epoch.
func MakeEpoch(t TID, c Clock) Epoch {
	return Epoch(uint64(c)<<32 | uint64(uint32(t)))
}

// EpochNone is the "no access recorded" epoch.
const EpochNone Epoch = 0

// TID extracts the thread id of the epoch.
func (e Epoch) TID() TID { return TID(int32(uint32(e))) }

// Clock extracts the scalar clock of the epoch.
func (e Epoch) Clock() Clock { return Clock(e >> 32) }

// IsNone reports whether the epoch records no access.
func (e Epoch) IsNone() bool { return e == EpochNone }

// LEQ reports whether the access recorded by e happens-before-or-equals the
// receiver thread's view v, i.e. e.Clock() <= v[e.TID()]. An empty epoch
// trivially happens before everything. The parameter is a View so detectors
// can compare against either a general *VC or a compact *Task clock; the
// *VC type assertion keeps the general hot path free of interface dispatch.
func (e Epoch) LEQ(v View) bool {
	if e.IsNone() {
		return true
	}
	if g, ok := v.(*VC); ok {
		return e.Clock() <= g.Get(e.TID())
	}
	return e.Clock() <= v.Get(e.TID())
}

// String renders the epoch as "c@t".
func (e Epoch) String() string {
	if e.IsNone() {
		return "⊥"
	}
	return fmt.Sprintf("%d@%d", e.Clock(), e.TID())
}

// VC is a growable vector clock. The zero value is the empty clock (all
// components zero). VC values are mutated in place by Join/Set/Inc; use
// Clone when an independent copy is needed.
//
// A clock may be bound to a Pool (pool != nil), in which case its backing
// array is recycled through the pool on growth and release, and it may
// share its backing array copy-on-write with other clocks (sh != nil and
// sh.refs > 1); every mutating method unshares first via owned(). Unbound
// zero-value clocks behave exactly as before.
type VC struct {
	c    []Clock
	sh   *shared // refcount header when the array is (or was) shared
	pool *Pool   // allocation home; nil = plain heap
}

// New returns an empty vector clock with capacity for n threads.
func New(n int) *VC {
	return &VC{c: make([]Clock, 0, n)}
}

// FromSlice builds a vector clock from explicit components (tests, examples).
func FromSlice(clocks ...Clock) *VC {
	v := &VC{c: make([]Clock, len(clocks))}
	copy(v.c, clocks)
	return v
}

// Len returns the number of stored components (trailing zeros may be
// omitted; Get beyond Len returns 0).
func (v *VC) Len() int { return len(v.c) }

// Get returns component t, which is zero for any thread the clock has not
// yet observed.
func (v *VC) Get(t TID) Clock {
	if int(t) < 0 || int(t) >= len(v.c) {
		return 0
	}
	return v.c[t]
}

// Set assigns component t, growing the clock as needed.
func (v *VC) Set(t TID, c Clock) {
	v.owned()
	v.grow(int(t) + 1)
	v.c[t] = c
}

// Inc increments component t by one and returns the new value.
func (v *VC) Inc(t TID) Clock {
	v.owned()
	v.grow(int(t) + 1)
	v.c[t]++
	return v.c[t]
}

// grow extends the clock to n components. Callers that mutate have already
// called owned(); grow itself only reallocates, recycling the old array
// through the pool when bound. Pooled arrays are zeroed at put, so exposing
// capacity with a reslice never reveals stale components.
func (v *VC) grow(n int) {
	if n <= len(v.c) {
		return
	}
	if n <= cap(v.c) {
		v.c = v.c[:n]
		return
	}
	want := max(n, 2*cap(v.c))
	var nc []Clock
	if v.pool != nil {
		nc = v.pool.rawSlice(want)[:n]
	} else {
		nc = make([]Clock, n, want)
	}
	copy(nc, v.c)
	old := v.c
	v.c = nc
	if sh := v.sh; sh != nil {
		// This header now owns a private copy; drop its share of the old
		// array (recycled only if we were the last holder).
		v.sh = nil
		v.pool.dropShare(sh, old)
	} else {
		v.pool.putSlice(old)
	}
}

// Join sets v to the element-wise maximum of v and o (v ⊔= o). This is the
// update applied on lock release (to the lock's clock) and on lock acquire
// (to the thread's clock).
func (v *VC) Join(o *VC) {
	v.owned()
	v.grow(len(o.c))
	for i, oc := range o.c {
		if oc > v.c[i] {
			v.c[i] = oc
		}
	}
}

// Assign overwrites v with a copy of o.
func (v *VC) Assign(o *VC) {
	v.owned()
	v.grow(len(o.c))
	// Zero the tail when shrinking: the backing array may later be
	// re-exposed by grow (within capacity), which must read as zeros.
	for i := len(o.c); i < len(v.c); i++ {
		v.c[i] = 0
	}
	v.c = v.c[:len(o.c)]
	copy(v.c, o.c)
}

// Clone returns an independent copy of v. Pool-bound clocks clone
// copy-on-write through their pool; unbound clocks get a plain deep copy.
func (v *VC) Clone() *VC {
	return v.CloneIn(v.pool)
}

// LEQ reports the pointwise order v ≤ o, i.e. every event v has observed is
// also observed by o. This realizes happens-before: a ≤ b for the recording
// clocks of two access histories means every access in a is ordered before b.
// o is a View so recorded histories compare against compact clocks too.
func (v *VC) LEQ(o View) bool {
	if g, ok := o.(*VC); ok {
		for i, c := range v.c {
			if c > g.Get(TID(i)) {
				return false
			}
		}
		return true
	}
	for i, c := range v.c {
		if c > o.Get(TID(i)) {
			return false
		}
	}
	return true
}

// Equal reports whether v and o denote the same logical time, treating
// missing trailing components as zero (the paper's "same size and contents
// of equal value" is satisfied up to trailing zeros, which are semantically
// identical).
func (v *VC) Equal(o *VC) bool {
	n := len(v.c)
	if len(o.c) > n {
		n = len(o.c)
	}
	for i := 0; i < n; i++ {
		if v.Get(TID(i)) != o.Get(TID(i)) {
			return false
		}
	}
	return true
}

// AnyGT returns the id of some thread t with v[t] > o[t], or NoTID when
// v ≤ o. Detectors use it to name the racing remote thread.
func (v *VC) AnyGT(o View) TID {
	for i, c := range v.c {
		if c > o.Get(TID(i)) {
			return TID(i)
		}
	}
	return NoTID
}

// Reset clears every component to zero, keeping capacity.
func (v *VC) Reset() {
	v.owned()
	for i := range v.c {
		v.c[i] = 0
	}
	v.c = v.c[:0]
}

// Bytes returns the accounting size of the clock's backing storage, used by
// the memory-overhead instrumentation (Table 2's "Vector clock" column
// counts object sizes).
func (v *VC) Bytes() int { return cap(v.c) * 4 }

// String renders the clock as "<c0, c1, ...>".
func (v *VC) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, c := range v.c {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", c)
	}
	b.WriteByte('>')
	return b.String()
}
