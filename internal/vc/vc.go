// Package vc implements the logical-time machinery underlying
// happens-before data race detection: growable vector clocks (Fidge/Mattern
// style, indexed by thread id) and FastTrack's packed epoch representation
// "c@t" that records a single (clock, thread) pair in one word.
//
// The conventions follow DJIT+ and FastTrack as described in Sections II–III
// of Song & Lee, "Efficient Data Race Detection for C/C++ Programs Using
// Dynamic Granularity" (IPPS 2014):
//
//   - Every thread t owns a vector clock T_t; T_t[t] is incremented at the
//     start of each new epoch (after every lock release).
//   - A lock s owns a vector clock L_s; release does L_s := L_s ⊔ T_t,
//     acquire does T_t := T_t ⊔ L_s.
//   - An access history entry is either a full vector clock or an epoch.
//
// Vector clocks grow on demand: index i beyond the current length reads as
// zero, so a clock over few threads stays small even in programs that later
// spawn many threads.
package vc

import (
	"fmt"
	"strings"
)

// TID identifies a virtual thread. Thread ids are small dense integers
// assigned in spawn order, which lets vector clocks be plain slices.
type TID int32

// Clock is a scalar logical clock value for one thread.
type Clock uint32

// NoTID marks an epoch that has no owner (e.g. "never written").
const NoTID TID = -1

// Epoch is FastTrack's packed last-access representation c@t: the upper 32
// bits hold the clock c, the lower 32 bits the thread id t. The zero Epoch
// is 0@0, which FastTrack treats as "no access yet" for writes because real
// accesses always carry clock ≥ 1 (threads start at clock 1).
type Epoch uint64

// MakeEpoch packs clock c of thread t into an Epoch.
func MakeEpoch(t TID, c Clock) Epoch {
	return Epoch(uint64(c)<<32 | uint64(uint32(t)))
}

// EpochNone is the "no access recorded" epoch.
const EpochNone Epoch = 0

// TID extracts the thread id of the epoch.
func (e Epoch) TID() TID { return TID(int32(uint32(e))) }

// Clock extracts the scalar clock of the epoch.
func (e Epoch) Clock() Clock { return Clock(e >> 32) }

// IsNone reports whether the epoch records no access.
func (e Epoch) IsNone() bool { return e == EpochNone }

// LEQ reports whether the access recorded by e happens-before-or-equals the
// receiver thread's view v, i.e. e.Clock() <= v[e.TID()]. An empty epoch
// trivially happens before everything.
func (e Epoch) LEQ(v *VC) bool {
	if e.IsNone() {
		return true
	}
	return e.Clock() <= v.Get(e.TID())
}

// String renders the epoch as "c@t".
func (e Epoch) String() string {
	if e.IsNone() {
		return "⊥"
	}
	return fmt.Sprintf("%d@%d", e.Clock(), e.TID())
}

// VC is a growable vector clock. The zero value is the empty clock (all
// components zero). VC values are mutated in place by Join/Set/Inc; use
// Clone when an independent copy is needed.
type VC struct {
	c []Clock
}

// New returns an empty vector clock with capacity for n threads.
func New(n int) *VC {
	return &VC{c: make([]Clock, 0, n)}
}

// FromSlice builds a vector clock from explicit components (tests, examples).
func FromSlice(clocks ...Clock) *VC {
	v := &VC{c: make([]Clock, len(clocks))}
	copy(v.c, clocks)
	return v
}

// Len returns the number of stored components (trailing zeros may be
// omitted; Get beyond Len returns 0).
func (v *VC) Len() int { return len(v.c) }

// Get returns component t, which is zero for any thread the clock has not
// yet observed.
func (v *VC) Get(t TID) Clock {
	if int(t) < 0 || int(t) >= len(v.c) {
		return 0
	}
	return v.c[t]
}

// Set assigns component t, growing the clock as needed.
func (v *VC) Set(t TID, c Clock) {
	v.grow(int(t) + 1)
	v.c[t] = c
}

// Inc increments component t by one and returns the new value.
func (v *VC) Inc(t TID) Clock {
	v.grow(int(t) + 1)
	v.c[t]++
	return v.c[t]
}

func (v *VC) grow(n int) {
	if n <= len(v.c) {
		return
	}
	if n <= cap(v.c) {
		v.c = v.c[:n]
		return
	}
	nc := make([]Clock, n, max(n, 2*cap(v.c)))
	copy(nc, v.c)
	v.c = nc
}

// Join sets v to the element-wise maximum of v and o (v ⊔= o). This is the
// update applied on lock release (to the lock's clock) and on lock acquire
// (to the thread's clock).
func (v *VC) Join(o *VC) {
	v.grow(len(o.c))
	for i, oc := range o.c {
		if oc > v.c[i] {
			v.c[i] = oc
		}
	}
}

// Assign overwrites v with a copy of o.
func (v *VC) Assign(o *VC) {
	v.grow(len(o.c))
	v.c = v.c[:len(o.c)]
	copy(v.c, o.c)
}

// Clone returns an independent copy of v.
func (v *VC) Clone() *VC {
	n := &VC{c: make([]Clock, len(v.c))}
	copy(n.c, v.c)
	return n
}

// LEQ reports the pointwise order v ≤ o, i.e. every event v has observed is
// also observed by o. This realizes happens-before: a ≤ b for the recording
// clocks of two access histories means every access in a is ordered before b.
func (v *VC) LEQ(o *VC) bool {
	for i, c := range v.c {
		if c > o.Get(TID(i)) {
			return false
		}
	}
	return true
}

// Equal reports whether v and o denote the same logical time, treating
// missing trailing components as zero (the paper's "same size and contents
// of equal value" is satisfied up to trailing zeros, which are semantically
// identical).
func (v *VC) Equal(o *VC) bool {
	n := len(v.c)
	if len(o.c) > n {
		n = len(o.c)
	}
	for i := 0; i < n; i++ {
		if v.Get(TID(i)) != o.Get(TID(i)) {
			return false
		}
	}
	return true
}

// AnyGT returns the id of some thread t with v[t] > o[t], or NoTID when
// v ≤ o. Detectors use it to name the racing remote thread.
func (v *VC) AnyGT(o *VC) TID {
	for i, c := range v.c {
		if c > o.Get(TID(i)) {
			return TID(i)
		}
	}
	return NoTID
}

// Reset clears every component to zero, keeping capacity.
func (v *VC) Reset() {
	for i := range v.c {
		v.c[i] = 0
	}
	v.c = v.c[:0]
}

// Bytes returns the accounting size of the clock's backing storage, used by
// the memory-overhead instrumentation (Table 2's "Vector clock" column
// counts object sizes).
func (v *VC) Bytes() int { return cap(v.c) * 4 }

// String renders the clock as "<c0, c1, ...>".
func (v *VC) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, c := range v.c {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", c)
	}
	b.WriteByte('>')
	return b.String()
}
