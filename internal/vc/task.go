package vc

// This file implements the structure-aware compact clock layer: when the
// observed synchronization graph is series–parallel (fork/join, channel
// handoff, WaitGroup barriers), a thread's vector clock is representable as
//
//	self clock  +  small overlay  +  immutable snapshot chain
//
// instead of a dense O(threads) array. A Task is the mutable clock of one
// live thread; a Snap is an immutable, reference-counted snapshot taken at
// each publishing sync operation (channel send/recv, WaitGroup.Done, fork).
//
// Two structural moves keep the representation near-constant-size per
// thread on structured programs:
//
//   - Delta chaining: a publication snapshot bases on the thread's own
//     previous snapshot and carries only the overlay entries that changed
//     since, so a hub thread that absorbs from many peers publishes O(1)
//     bytes per operation instead of re-copying an O(threads) overlay. A
//     publication nobody has consumed yet (refcount 1) is merged in place
//     rather than chained, so unconsumed publication history never piles up.
//
//   - Base swapping: absorbing a newer snapshot of the same thread the
//     clock's base chain already starts at replaces the base wholesale —
//     pointwise dominance of a later snapshot over an earlier one of the
//     same thread makes the swap exact — so a spoke thread's overlay stays
//     empty no matter how much hub knowledge flows through it.
//
// Soundness rests on one discipline, enforced by the callers in
// internal/fasttrack: every publication snapshots the clock and then
// increments the owner's self component. Publication points (tid, self) are
// therefore unique and monotone, which justifies the dominance prune in
// Absorb/SnapJoinInto: if the absorbing clock knew tid at ≥ self *before
// the walk started*, it has transitively absorbed everything the snapshot
// carries. With delta chains the pre-walk qualifier matters: a level set
// earlier in the same walk no longer summarizes its own chain, so walks
// record the first-seen ("pre") value of every component they touch and
// prune against those.
//
// The layer is verdict-preserving: a Task's Get is pointwise equal to the
// general *VC the same operation sequence would produce, so detectors
// comparing through the View interface report byte-identical races.

// pair is one overlay component (thread t observed at clock c).
type pair struct {
	t TID
	c Clock
}

// Accounting sizes, in the spirit of VC.Bytes: struct headers plus backing
// arrays. These feed the compact-vs-general byte gauges.
const (
	snapHdrBytes = 48
	taskHdrBytes = 88
	pairBytes    = 8
)

// Snap is an immutable snapshot of a thread clock at a publication point.
// Its logical value is self@tid joined with over joined with the base
// chain; lookups are first-found-wins walking outward-in, which is exact
// because overlays are maintained at their maximum (set only when strictly
// greater than everything deeper).
type Snap struct {
	base *Snap
	over []pair
	tid  TID
	self Clock
	refs int32
}

// Get returns the snapshot's component for thread t.
func (s *Snap) Get(t TID) Clock {
	for ; s != nil; s = s.base {
		if t == s.tid {
			return s.self
		}
		for _, p := range s.over {
			if p.t == t {
				return p.c
			}
		}
	}
	return 0
}

// Task is the mutable compact clock of one live structured thread. It
// implements View, so FastTrack's epoch comparisons read it directly.
type Task struct {
	arena *Arena
	base  *Snap
	// last is the thread's own previous publication, the base of the next
	// delta-chained snapshot.
	last *Snap
	// final caches the terminal snapshot handed to joiners (Join does not
	// start a new epoch, so all joiners see the same publication).
	final *Snap
	over  []pair
	tid   TID
	self  Clock
	// dirtyFrom marks the overlay suffix changed since the last
	// publication — the delta the next chained snapshot carries. Updates
	// to entries before the mark move them into the suffix.
	dirtyFrom int32
	// baseChanged notes a base swap since the last publication; the next
	// snapshot must then re-base on the new chain with the full overlay.
	baseChanged bool
	// cache holds the last two Get results for the access path, consulted
	// before the overlay scan and the chain walk. Chain folds and in-place
	// merges are value-preserving, so only the mutations that can change a
	// resolved component — an overlay set or a base swap — invalidate it.
	// Zero-clock results are not cached (c == 0 marks an empty slot).
	cache [2]pair
}

// TID returns the owning thread id.
func (k *Task) TID() TID { return k.tid }

// Self returns the thread's own clock component (its current epoch).
func (k *Task) Self() Clock { return k.self }

// Get returns component t: self for the owner, else the overlay, else the
// snapshot chain. First match wins (overlays dominate deeper history).
func (k *Task) Get(t TID) Clock {
	if t == k.tid {
		return k.self
	}
	if k.cache[0].t == t && k.cache[0].c != 0 {
		return k.cache[0].c
	}
	if k.cache[1].t == t && k.cache[1].c != 0 {
		return k.cache[1].c
	}
	c := k.lookup(t)
	if c != 0 {
		k.cache[1] = k.cache[0]
		k.cache[0] = pair{t, c}
	}
	return c
}

// lookup resolves component t through the overlay and the snapshot chain,
// bypassing the cache (the walk behind Get, and the pre-value reads during
// absorbs, which must not pollute the cache mid-mutation).
func (k *Task) lookup(t TID) Clock {
	for _, p := range k.over {
		if p.t == t {
			return p.c
		}
	}
	return k.base.Get(t)
}

// set raises component t to c in the overlay and marks it dirty. Callers
// guarantee c exceeds the current value, keeping overlays at their maximum —
// so a cached Get result for t is refreshed in place rather than dropped.
func (k *Task) set(t TID, c Clock) {
	if k.cache[0].t == t && k.cache[0].c != 0 {
		k.cache[0].c = c
	}
	if k.cache[1].t == t && k.cache[1].c != 0 {
		k.cache[1].c = c
	}
	for i := range k.over {
		if k.over[i].t == t {
			if int32(i) >= k.dirtyFrom {
				k.over[i].c = c
				return
			}
			// Move a clean entry into the dirty suffix.
			copy(k.over[i:], k.over[i+1:])
			k.over[len(k.over)-1] = pair{t, c}
			k.dirtyFrom--
			return
		}
	}
	old := cap(k.over)
	k.over = append(k.over, pair{t, c})
	if n := cap(k.over); n != old {
		k.arena.account(pairBytes * int64(n-old))
	}
}

// Publish snapshots the clock for a release-style operation (channel send
// or receive publication, WaitGroup.Done, fork) and advances the owner to a
// new epoch. The caller owns the returned reference.
func (k *Task) Publish() *Snap {
	s := k.snapshot(true)
	k.self++
	k.dropFinal()
	return s
}

// Final returns the terminal snapshot a joiner absorbs. Join does not open
// a new epoch (matching the general path, which joins without increment),
// and the thread is past its last publication, so the snapshot is cached
// and shared by every joiner. The caller owns the returned reference.
func (k *Task) Final() *Snap {
	if k.final == nil {
		k.final = k.snapshot(false)
	}
	k.final.refs++
	return k.final
}

// snapshot captures the task's current value. When update is set the
// snapshot becomes the thread's publication point: it replaces last and
// resets the delta window. A read-only snapshot (Final) leaves both alone.
func (k *Task) snapshot(update bool) *Snap {
	delta := k.last != nil && !k.baseChanged
	if update && delta && k.last.refs == 1 {
		// Nobody consumed the previous publication: fold the delta into it
		// in place instead of growing the chain.
		s := k.last
		s.self = k.self
		for _, p := range k.over[k.dirtyFrom:] {
			k.arena.snapSet(s, p)
		}
		k.dirtyFrom = int32(len(k.over))
		s.refs++
		k.arena.compactChain(s)
		return s
	}
	s := k.arena.getSnap()
	if delta {
		s.base = k.last
		s.over = append(s.over[:0], k.over[k.dirtyFrom:]...)
	} else {
		s.base = k.base
		s.over = append(s.over[:0], k.over...)
	}
	if s.base != nil {
		s.base.refs++
	}
	s.tid = k.tid
	s.self = k.self
	s.refs = 1
	k.arena.account(snapHdrBytes + pairBytes*int64(cap(s.over)))
	if update {
		if k.last != nil {
			k.arena.Release(k.last)
		}
		k.last = s
		s.refs++
		k.dirtyFrom = int32(len(k.over))
		k.baseChanged = false
		k.arena.compactChain(s)
	}
	return s
}

func (k *Task) dropFinal() {
	if k.final != nil {
		k.arena.Release(k.final)
		k.final = nil
	}
}

// Absorb joins snapshot s into the clock (the acquire side of a sync edge).
// A snapshot that covers the current base's publication point — it carries
// base.tid at ≥ base.self, so by publication transitivity it has absorbed
// everything the base carries — swaps in as the new base wholesale, and the
// overlay stays near-empty on handoff patterns no matter how much hub
// knowledge flows through: this is what keeps spoke threads O(1) even when
// every publication they absorb carries global fan-in knowledge.
// Everything else flattens through a pre-value-pruned chain walk, O(new
// publications) amortized. s's reference is not consumed.
func (k *Task) Absorb(s *Snap) {
	k.dropFinal()
	if b := k.base; b != nil {
		if s.tid == b.tid {
			if s.self <= b.self {
				return // base already dominates s
			}
			k.swapBase(s)
			return
		}
		if s.Get(b.tid) >= b.self {
			k.swapBase(s)
			return
		}
	}
	k.absorbWalk(s)
}

// swapBase replaces the base with s, a later snapshot of the same thread
// (pointwise dominant, since thread clocks are monotone). Overlay entries
// the new base covers are dropped to keep the overlay at its maximum.
func (k *Task) swapBase(s *Snap) {
	s.refs++
	old := k.base
	k.base = s
	out := k.over[:0]
	for _, p := range k.over {
		if s.Get(p.t) < p.c {
			out = append(out, p)
		}
	}
	for i := len(out); i < len(k.over); i++ {
		k.over[i] = pair{}
	}
	k.over = out
	k.dirtyFrom = 0
	k.baseChanged = true
	k.cache = [2]pair{}
	k.arena.Release(old)
}

// absorbWalk flattens s's chain into the overlay, pruning against
// pre-walk component values (see the package comment).
func (k *Task) absorbWalk(s *Snap) {
	a := k.arena
	a.preReset()
	for ; s != nil; s = s.base {
		cur := k.Get(s.tid)
		if a.preOf(s.tid, cur) >= s.self {
			return
		}
		if cur < s.self {
			k.set(s.tid, s.self)
		}
		for _, p := range s.over {
			c := k.Get(p.t)
			a.preOf(p.t, c)
			if c < p.c {
				k.set(p.t, p.c)
			}
		}
	}
}

// MaterializeInto joins the task's full value into v (used at demotion,
// when the thread falls back to a general clock). Unlike Absorb this walks
// the entire chain without pruning: v is being built and cannot vouch for
// having absorbed anything.
func (k *Task) MaterializeInto(v *VC) {
	if v.Get(k.tid) < k.self {
		v.Set(k.tid, k.self)
	}
	joinPairs(v, k.over)
	for s := k.base; s != nil; s = s.base {
		if v.Get(s.tid) < s.self {
			v.Set(s.tid, s.self)
		}
		joinPairs(v, s.over)
	}
}

// Bytes returns the accounting size of the task's own storage (the shared
// snapshot chain is accounted by the arena).
func (k *Task) Bytes() int64 { return taskHdrBytes + pairBytes*int64(cap(k.over)) }

// SnapJoinInto joins snapshot s into the complete clock v, with the same
// pre-value-pruned walk as Task.Absorb: v must be a full clock satisfying
// the invariant that knowing tid at ≥ self implies having absorbed that
// publication (true for any demoted thread's or lock's live clock, not for
// a clock under construction — use MaterializeInto there). The arena only
// lends walk scratch; s stays owned by its holder.
func SnapJoinInto(a *Arena, s *Snap, v *VC) {
	a.preReset()
	for ; s != nil; s = s.base {
		cur := v.Get(s.tid)
		if a.preOf(s.tid, cur) >= s.self {
			return
		}
		if cur < s.self {
			v.Set(s.tid, s.self)
		}
		for _, p := range s.over {
			c := v.Get(p.t)
			a.preOf(p.t, c)
			if c < p.c {
				v.Set(p.t, p.c)
			}
		}
	}
}

func joinPairs(v *VC, over []pair) {
	for _, p := range over {
		if v.Get(p.t) < p.c {
			v.Set(p.t, p.c)
		}
	}
}

// Arena owns the compact-clock storage for one detector: freelists for
// snapshots and tasks, walk scratch, and exact live/peak byte accounting.
// It is single-owner (one detector goroutine), so reference counts are
// plain integers — no atomics on the hot path.
type Arena struct {
	freeSnaps []*Snap
	freeTasks []*Task
	// pre-walk component values recorded during one Absorb/SnapJoinInto
	// (transient scratch, reused across walks).
	preT []TID
	preC []Clock
	// chain walk scratch for compactChain.
	chainBuf []*Snap
	live     int64
	peak     int64
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// LiveBytes returns the bytes of compact clock state currently alive.
func (a *Arena) LiveBytes() int64 { return a.live }

// PeakBytes returns the high-water mark of LiveBytes.
func (a *Arena) PeakBytes() int64 { return a.peak }

func (a *Arena) account(d int64) {
	a.live += d
	if a.live > a.peak {
		a.peak = a.live
	}
}

// preReset clears the walk scratch.
func (a *Arena) preReset() {
	a.preT = a.preT[:0]
	a.preC = a.preC[:0]
}

// preOf returns component t's value as of the start of the current walk,
// recording cur as that value on first sight.
func (a *Arena) preOf(t TID, cur Clock) Clock {
	for i, pt := range a.preT {
		if pt == t {
			return a.preC[i]
		}
	}
	a.preT = append(a.preT, t)
	a.preC = append(a.preC, cur)
	return cur
}

// compactChain coalesces every maximal dead run — consecutive nodes whose
// only remaining reference is their successor — into the run's topmost
// member, freeing the rest. The fold is value-preserving: the successor's
// lookup already resolved through the folded node first-found-wins, so
// moving its entries into the successor's overlay (skipping components the
// successor covers) and splicing its base up changes no Get result.
// Without it, a delta chain would stay alive end to end: every node holds
// its base, and the head is always held by its task.
//
// Folds deliberately never target an externally-pinned node. A pin is
// shared by every queue entry and spoke base that holds it; accumulating
// the dead deltas below each pin into the pin itself would give every
// long-lived pin its own copy of the union — densifying each one toward a
// full O(threads) vector, exactly the blow-up the delta chain exists to
// avoid. Coalescing dead-into-dead instead keeps at most one small
// accumulator node per run: pins stay one delta wide, and an unpinned
// history (a spoke publishing above a long-held fork snapshot) still
// collapses to a single node.
func (a *Arena) compactChain(head *Snap) {
	buf := a.chainBuf[:0]
	for s := head; s != nil; s = s.base {
		buf = append(buf, s)
	}
	for i := len(buf) - 1; i > 0; i-- {
		b := buf[i]
		s := buf[i-1]
		if b.refs != 1 || s.refs != 1 {
			continue
		}
		if b.tid != s.tid && s.overLacks(b.tid) {
			a.snapAppend(s, pair{b.tid, b.self})
		}
		for _, p := range b.over {
			if p.t != s.tid && s.overLacks(p.t) {
				a.snapAppend(s, p)
			}
		}
		s.base = b.base // b's reference on its base transfers to s
		b.refs = 0
		b.base = nil
		a.account(-(snapHdrBytes + pairBytes*int64(cap(b.over))))
		b.over = b.over[:0]
		a.freeSnaps = append(a.freeSnaps, b)
	}
	a.chainBuf = buf[:0]
}

// overLacks reports whether s's overlay has no entry for t.
func (s *Snap) overLacks(t TID) bool {
	for _, p := range s.over {
		if p.t == t {
			return false
		}
	}
	return true
}

// snapAppend adds a new overlay entry to s (caller guarantees absence).
func (a *Arena) snapAppend(s *Snap, p pair) {
	old := cap(s.over)
	s.over = append(s.over, p)
	if n := cap(s.over); n != old {
		a.account(pairBytes * int64(n-old))
	}
}

// snapSet raises component p.t to p.c in s's overlay (in-place publication
// merge; s must be exclusively held).
func (a *Arena) snapSet(s *Snap, p pair) {
	for i := range s.over {
		if s.over[i].t == p.t {
			s.over[i].c = p.c
			return
		}
	}
	old := cap(s.over)
	s.over = append(s.over, p)
	if n := cap(s.over); n != old {
		a.account(pairBytes * int64(n-old))
	}
}

// smallOverCap bounds the overlay capacity a recycled snapshot may keep.
// Bottom accumulator nodes retire with near-dense overlays; letting their
// backing arrays ride the freelist would silently inflate every later
// one-pair delta to that capacity.
const smallOverCap = 8

func (a *Arena) getSnap() *Snap {
	if n := len(a.freeSnaps); n > 0 {
		s := a.freeSnaps[n-1]
		a.freeSnaps = a.freeSnaps[:n-1]
		if cap(s.over) > smallOverCap {
			s.over = nil
		}
		return s
	}
	return &Snap{}
}

// Retain adds a reference to s (nil-safe).
func (a *Arena) Retain(s *Snap) {
	if s != nil {
		s.refs++
	}
}

// Release drops a reference to s, recycling it (and iteratively any base it
// was the last holder of) into the freelist.
func (a *Arena) Release(s *Snap) {
	for s != nil {
		s.refs--
		if s.refs > 0 {
			return
		}
		base := s.base
		a.account(-(snapHdrBytes + pairBytes*int64(cap(s.over))))
		s.base = nil
		s.over = s.over[:0]
		a.freeSnaps = append(a.freeSnaps, s)
		s = base
	}
}

// NewTask creates the compact clock for thread t starting at epoch 1 (the
// same initial value ensure gives a general clock). base is the parent's
// fork snapshot, or nil for a root thread; its reference is transferred to
// the task.
func (a *Arena) NewTask(t TID, base *Snap) *Task {
	var k *Task
	if n := len(a.freeTasks); n > 0 {
		k = a.freeTasks[n-1]
		a.freeTasks = a.freeTasks[:n-1]
	} else {
		k = &Task{}
	}
	k.arena = a
	k.base = base
	k.last = nil
	k.final = nil
	k.over = k.over[:0]
	k.tid = t
	k.self = 1
	k.dirtyFrom = 0
	k.baseChanged = false
	k.cache = [2]pair{}
	a.account(taskHdrBytes + pairBytes*int64(cap(k.over)))
	return k
}

// FreeTask releases the task's references and recycles it (demotion, or
// detector teardown).
func (a *Arena) FreeTask(k *Task) {
	a.Release(k.base)
	k.base = nil
	if k.last != nil {
		a.Release(k.last)
		k.last = nil
	}
	k.dropFinal()
	a.account(-(taskHdrBytes + pairBytes*int64(cap(k.over))))
	k.over = k.over[:0]
	a.freeTasks = append(a.freeTasks, k)
}
