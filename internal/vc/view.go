package vc

// View is the read side of a thread clock: component lookup by thread id.
// Both the general *VC and the compact *Task representation implement it,
// which lets the detectors' comparison sites (Epoch.LEQ, VC.LEQ, AnyGT and
// the FastTrack check functions) accept either without converting. Hot
// methods type-assert *VC first so the general path keeps its direct loop.
type View interface {
	// Get returns component t, zero for threads the clock has not observed.
	Get(t TID) Clock
}
