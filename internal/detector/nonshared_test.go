package detector

import (
	"testing"

	"repro/internal/event"
	"repro/internal/sim"
)

// TestNonSharedFilter: accesses in the stack region are dropped before any
// shadow work — the first line of Figure 3.
func TestNonSharedFilter(t *testing.T) {
	d := New(Config{Granularity: Dynamic})
	stack := event.StackBase + 0x100
	d.Write(0, stack, 8, 1)
	d.Read(1, stack, 8, 2) // would race if tracked
	st := d.Stats()
	if st.NonShared != 2 {
		t.Errorf("NonShared = %d, want 2", st.NonShared)
	}
	if st.Accesses != 0 {
		t.Errorf("filtered accesses counted as shared: %d", st.Accesses)
	}
	if st.Plane.NodesCur != 0 {
		t.Errorf("shadow state created for stack accesses: %d nodes", st.Plane.NodesCur)
	}
	if len(d.Races()) != 0 {
		t.Errorf("stack accesses raced: %v", d.Races())
	}
}

// TestThreadLocalAddressesAreNonShared: the engine's Local helper yields
// per-thread addresses inside the filtered region.
func TestThreadLocalAddressesAreNonShared(t *testing.T) {
	d := New(Config{Granularity: Dynamic})
	sim.Run(sim.Program{Name: "locals", Main: func(m *sim.Thread) {
		a := m.Go(func(w *sim.Thread) {
			for i := 0; i < 50; i++ {
				w.Write(w.Local(0), 8) // same offset as the sibling's
				w.Read(w.Local(0), 8)
			}
		})
		b := m.Go(func(w *sim.Thread) {
			for i := 0; i < 50; i++ {
				w.Write(w.Local(0), 8)
			}
		})
		m.Join(a)
		m.Join(b)
	}}, d, sim.Options{Seed: 1})
	if len(d.Races()) != 0 {
		t.Errorf("thread-local accesses raced: %v", d.Races())
	}
	if st := d.Stats(); st.NonShared != 150 {
		t.Errorf("NonShared = %d, want 150", st.NonShared)
	}
}

// Distinct threads get distinct stack windows.
func TestLocalWindowsDisjoint(t *testing.T) {
	var a0, a1 uint64
	sim.Run(sim.Program{Name: "windows", Main: func(m *sim.Thread) {
		a0 = m.Local(0x10)
		c := m.Go(func(w *sim.Thread) { a1 = w.Local(0x10) })
		m.Join(c)
	}}, event.Nop{}, sim.Options{})
	if a0 == a1 {
		t.Error("thread stack windows overlap")
	}
	if !event.NonShared(a0) || !event.NonShared(a1) {
		t.Error("Local addresses must be in the non-shared region")
	}
}
