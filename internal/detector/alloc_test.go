// Allocation guards for the memory layer: once the working set is warm
// (shadow entries, bitmap chunks, vector clocks, and node freelists all
// populated), the detection hot path must not touch the Go heap. These
// tests pin the zero-alloc steady state with testing.AllocsPerRun so any
// future escape or missed pool path fails CI rather than showing up as a
// silent slowdown.
package detector

import (
	"testing"

	"repro/internal/event"
	"repro/internal/vc"
)

// TestSameEpochFastPathZeroAlloc pins the most important path of all: a
// thread re-accessing a location it already owns in the same epoch (the
// FastTrack same-epoch check, ~70-90% of all accesses in Table 2
// workloads) performs zero heap allocations at every granularity.
func TestSameEpochFastPathZeroAlloc(t *testing.T) {
	for _, g := range []Granularity{Byte, Word, Dynamic} {
		g := g
		t.Run(g.String(), func(t *testing.T) {
			d := New(Config{Granularity: g})
			const base, n = 0x1000, 256
			warm := func() {
				for a := uint64(0); a < n; a += 8 {
					d.Write(0, base+a, 8, 1)
					d.Read(0, base+a, 8, 2)
				}
			}
			warm() // populate shadow entries, bitmap chunks, thread state
			if got := testing.AllocsPerRun(50, warm); got != 0 {
				t.Fatalf("same-epoch steady state: %v allocs/run, want 0", got)
			}
			if races := len(d.Races()); races != 0 {
				t.Fatalf("unexpected races: %d", races)
			}
		})
	}
}

// TestSynchronizedSteadyStateZeroAlloc exercises the full churn loop: two
// threads ping-pong lock-ordered ownership of a warm address range, which
// drives epoch bumps, lock-clock assignment, dynamic-granularity splits,
// merges, and node recycling on every cycle. After warm-up the entire
// cycle — accesses, acquire/release, and malloc/free shadow drops — must
// run without heap allocation: nodes come from the plane freelist, clocks
// from the vc pool, and DropRange's collection buffer is reused.
func TestSynchronizedSteadyStateZeroAlloc(t *testing.T) {
	for _, g := range []Granularity{Byte, Word, Dynamic} {
		g := g
		t.Run(g.String(), func(t *testing.T) {
			d := New(Config{Granularity: g})
			const base, span = 0x4000, 512
			const lk = event.LockID(7)
			d.Fork(0, 1)
			cycle := func() {
				for _, tid := range []vc.TID{0, 1} {
					d.Acquire(tid, lk)
					for a := uint64(0); a < span; a += 4 {
						d.Write(tid, base+a, 4, 10)
						d.Read(tid, base+a, 4, 11)
					}
					// Heap-style churn: drop and re-create a sub-range's
					// shadow state, recycling its nodes through the freelist.
					d.Free(tid, base+span, 128)
					for a := uint64(0); a < 128; a += 8 {
						d.Write(tid, base+span+a, 8, 12)
					}
					d.Release(tid, lk)
				}
			}
			// Warm twice: the first pass allocates the working set, the
			// second settles freelist and scratch-buffer capacities.
			cycle()
			cycle()
			if got := testing.AllocsPerRun(20, cycle); got != 0 {
				t.Fatalf("synchronized steady state: %v allocs/run, want 0", got)
			}
			if races := len(d.Races()); races != 0 {
				t.Fatalf("unexpected races: %d (loop must stay race-free)", races)
			}
		})
	}
}
