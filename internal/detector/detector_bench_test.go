package detector

import (
	"testing"

	"repro/internal/vc"
)

// benchStream drives the detector with a repeatable single-threaded access
// stream: an init sweep, then epochs re-walking the same range.
func benchStream(b *testing.B, g Granularity) {
	d := New(Config{Granularity: g})
	const words = 256
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := uint64(i % words)
		d.Write(0, 0x1000+w*4, 4, 1)
		if w == words-1 {
			d.Release(0, 1) // epoch boundary each full sweep
		}
	}
}

func BenchmarkSweepByte(b *testing.B)    { benchStream(b, Byte) }
func BenchmarkSweepWord(b *testing.B)    { benchStream(b, Word) }
func BenchmarkSweepDynamic(b *testing.B) { benchStream(b, Dynamic) }

// benchChurn measures allocation-heavy single-epoch buffers (the pbzip2
// pattern): fill a fresh region, then free it.
func benchChurn(b *testing.B, g Granularity) {
	d := New(Config{Granularity: g})
	const words = 128
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := 0x10000 + uint64(i%64)*words*4
		for w := uint64(0); w < words; w++ {
			d.Write(0, base+w*4, 4, 1)
		}
		d.Free(0, base, words*4)
		d.Release(0, 1)
	}
}

func BenchmarkChurnByte(b *testing.B)    { benchChurn(b, Byte) }
func BenchmarkChurnDynamic(b *testing.B) { benchChurn(b, Dynamic) }

// BenchmarkSameEpochFastPath isolates the bitmap filter.
func BenchmarkSameEpochFastPath(b *testing.B) {
	d := New(Config{Granularity: Dynamic})
	d.Write(0, 0x1000, 4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Write(0, 0x1000, 4, 1)
	}
}

// BenchmarkCrossThreadHandoff measures the ordered producer/consumer
// pattern: writes published through a lock, read by another thread.
func BenchmarkCrossThreadHandoff(b *testing.B) {
	d := New(Config{Granularity: Dynamic})
	d.Fork(0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := 0x2000 + uint64(i%512)*4
		d.Write(0, a, 4, 1)
		d.Release(0, 1)
		d.Acquire(1, 1)
		d.Read(1, a, 4, 2)
		d.Release(1, 2)
	}
	_ = vc.TID(0)
}
