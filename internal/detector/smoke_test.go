package detector_test

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/sim"
)

func runProg(t *testing.T, g detector.Granularity, main func(*sim.Thread)) (*detector.Detector, sim.Stats) {
	t.Helper()
	d := detector.New(detector.Config{Granularity: g})
	st := sim.Run(sim.Program{Name: "smoke", Main: main}, d, sim.Options{Seed: 1})
	return d, st
}

// An unsynchronized write-write conflict must be reported at every
// granularity.
func TestSmokeDetectsSimpleRace(t *testing.T) {
	for _, g := range []detector.Granularity{detector.Byte, detector.Word, detector.Dynamic} {
		d, _ := runProg(t, g, func(m *sim.Thread) {
			m.At(1)
			w := m.Go(func(w *sim.Thread) {
				w.At(2)
				w.Write(0x1000, 4)
			})
			m.Write(0x1000, 4)
			m.Join(w)
		})
		if len(d.Races()) != 1 {
			t.Errorf("%v granularity: got %d races, want 1: %v", g, len(d.Races()), d.Races())
		}
	}
}

// A properly locked counter must not be reported.
func TestSmokeNoFalseAlarmWithLock(t *testing.T) {
	for _, g := range []detector.Granularity{detector.Byte, detector.Word, detector.Dynamic} {
		d, _ := runProg(t, g, func(m *sim.Thread) {
			l := m.NewLock()
			worker := func(w *sim.Thread) {
				for i := 0; i < 10; i++ {
					w.Lock(l)
					w.Read(0x2000, 4)
					w.Write(0x2000, 4)
					w.Unlock(l)
				}
			}
			a := m.Go(worker)
			b := m.Go(worker)
			m.Join(a)
			m.Join(b)
		})
		if len(d.Races()) != 0 {
			t.Errorf("%v granularity: got unexpected races: %v", g, d.Races())
		}
	}
}

// Fork/join ordering is synchronization: parent-before-child and
// child-before-join accesses must not race.
func TestSmokeForkJoinOrdering(t *testing.T) {
	d, _ := runProg(t, detector.Dynamic, func(m *sim.Thread) {
		m.Write(0x3000, 8) // before fork
		c := m.Go(func(w *sim.Thread) {
			w.Read(0x3000, 8)
			w.Write(0x3000, 8)
		})
		m.Join(c)
		m.Read(0x3000, 8) // after join
	})
	if len(d.Races()) != 0 {
		t.Errorf("unexpected races across fork/join: %v", d.Races())
	}
}

// Barriers order phases: writes in phase 1 then disjoint reads in phase 2.
func TestSmokeBarrierOrdering(t *testing.T) {
	d, _ := runProg(t, detector.Dynamic, func(m *sim.Thread) {
		const n = 4
		b := m.NewBarrier(n)
		workers := make([]*sim.Thread, 0, n-1)
		body := func(id int) func(*sim.Thread) {
			return func(w *sim.Thread) {
				w.Write(uint64(0x4000+4*id), 4)
				w.Barrier(b)
				// Everyone reads everything after the barrier.
				for j := 0; j < n; j++ {
					w.Read(uint64(0x4000+4*j), 4)
				}
			}
		}
		for i := 1; i < n; i++ {
			workers = append(workers, m.Go(body(i)))
		}
		body(0)(m)
		for _, w := range workers {
			m.Join(w)
		}
	})
	if len(d.Races()) != 0 {
		t.Errorf("unexpected races across barrier: %v", d.Races())
	}
}

// The same seed must produce identical reports (engine determinism).
func TestSmokeDeterminism(t *testing.T) {
	run := func() []detector.Race {
		d, _ := runProg(t, detector.Dynamic, func(m *sim.Thread) {
			l := m.NewLock()
			var hs []*sim.Thread
			for i := 0; i < 4; i++ {
				i := i
				hs = append(hs, m.Go(func(w *sim.Thread) {
					for j := 0; j < 50; j++ {
						if j%3 == 0 {
							w.Lock(l)
							w.Write(0x5000, 4)
							w.Unlock(l)
						}
						w.Write(uint64(0x6000+16*i+4*(j%4)), 4)
						w.Write(0x7000, 2) // deliberate race
					}
				}))
			}
			for _, h := range hs {
				m.Join(h)
			}
		})
		return d.Races()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic race count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("report %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("expected the deliberate race to be reported")
	}
}

// Free must clear shadow state: a reused heap block whose previous owner
// wrote it unsynchronized must not race with the next owner.
func TestSmokeFreeClearsShadow(t *testing.T) {
	d, _ := runProg(t, detector.Dynamic, func(m *sim.Thread) {
		addr := m.Malloc(64)
		c := m.Go(func(w *sim.Thread) {
			w.WriteBlock(addr, 4, 16)
			w.Free(addr)
		})
		m.Join(c)
		// Same address, fresh allocation, no relation to the old writes.
		addr2 := m.Malloc(64)
		if addr2 != addr {
			t.Errorf("allocator did not reuse freed block: %#x vs %#x", addr2, addr)
		}
		c2 := m.Go(func(w *sim.Thread) {
			w.WriteBlock(addr2, 4, 16)
		})
		m.Join(c2)
	})
	if len(d.Races()) != 0 {
		t.Errorf("stale shadow state raced after free: %v", d.Races())
	}
}

// Suppression must hide races attributed to libc/ld modules.
func TestSmokeSuppression(t *testing.T) {
	d, _ := runProg(t, detector.Dynamic, func(m *sim.Thread) {
		m.AtModule(event.ModuleLibc, 7)
		c := m.Go(func(w *sim.Thread) {
			w.AtModule(event.ModuleLibc, 8)
			w.Write(0x8000, 8)
		})
		m.Write(0x8000, 8)
		m.Join(c)
	})
	if len(d.Races()) != 0 {
		t.Errorf("suppressed race was reported: %v", d.Races())
	}
	if d.Stats().Suppressed == 0 {
		t.Error("suppression counter not incremented")
	}
}
