// Telemetry instruments for the detector front end. Counters are bumped at
// exactly the sites that bump the corresponding Stats fields, so summed
// telemetry reconciles against Detector.Stats() — pinned by
// race.TestTelemetryReconciliation. All instruments are nil-safe: a nil
// registry yields a valid Metrics whose increments are no-ops, so the hot
// path carries one predictable branch per site when telemetry is disabled.
package detector

import (
	"repro/internal/dyngran"
	"repro/internal/fasttrack"
	"repro/internal/telemetry"
)

// Metrics is the detector instrument set. Construct with NewMetrics; the
// disabled set (from a nil registry) is valid and free.
type Metrics struct {
	// Front-end event accounting (mirrors Stats.Accesses / SameEpoch /
	// NonShared).
	Accesses  *telemetry.Counter
	SameEpoch *telemetry.Counter
	NonShared *telemetry.Counter
	// SharingComparisons mirrors Stats.SharingComparisons.
	SharingComparisons *telemetry.Counter
	// LocCreations mirrors Stats.Plane.LocCreations (first-access location
	// creations across both planes).
	LocCreations *telemetry.Counter
	// Races / Suppressed mirror Stats.Races / Stats.Suppressed.
	Races      *telemetry.Counter
	Suppressed *telemetry.Counter
	// Reshares counts adaptive-resharing re-decisions (the ReshareInterval
	// extension).
	Reshares *telemetry.Counter

	// Structure-aware clock layer instruments (mirroring the Clock*
	// Stats fields): how many threads still hold compact clocks, the
	// per-reason demotion counters, and the compact-vs-general byte
	// gauges. Gauges are set at Stats() snapshot time by shard 0 only
	// (sync events are broadcast, so every shard sees the same values).
	StructuredThreads *telemetry.Gauge
	CompactClockBytes *telemetry.Gauge
	GeneralClockBytes *telemetry.Gauge
	Demotions         [fasttrack.NumDemoteReasons]*telemetry.Counter

	// Read / Write are the per-plane shadow instrument sets (node churn,
	// state transitions, sharing decisions).
	Read  *dyngran.Metrics
	Write *dyngran.Metrics
}

// NewMetrics registers the detector metric families on r. A nil registry
// yields a valid, disabled Metrics (including disabled plane sets).
func NewMetrics(r *telemetry.Registry) *Metrics {
	var demotions [fasttrack.NumDemoteReasons]*telemetry.Counter
	for i := range demotions {
		demotions[i] = r.Counter("clock_demotions_total",
			"Threads demoted from compact to general clocks, by unstructured edge kind.",
			telemetry.Labels{"reason": fasttrack.DemoteReason(i).String()})
	}
	return &Metrics{
		Accesses:           r.Counter("detector_accesses_total", "Memory-access events processed (post stack filter)."),
		SameEpoch:          r.Counter("detector_same_epoch_hits_total", "Accesses filtered by the per-thread same-epoch bitmaps."),
		NonShared:          r.Counter("detector_nonshared_total", "Stack accesses filtered by the non-shared check."),
		SharingComparisons: r.Counter("detector_sharing_comparisons_total", "Clock comparisons made for sharing decisions."),
		LocCreations:       r.Counter("detector_loc_creations_total", "First-access shadow location creations."),
		Races:              r.Counter("detector_races_total", "Data races reported."),
		Suppressed:         r.Counter("detector_races_suppressed_total", "Races hidden by module suppression."),
		Reshares:           r.Counter("detector_reshares_total", "Adaptive re-sharing decisions after the second epoch."),
		StructuredThreads:  r.Gauge("clock_structured_threads", "Threads currently holding compact (task-tree) clocks."),
		CompactClockBytes:  r.Gauge("clock_compact_bytes", "Live bytes of compact clock state (tasks, snapshots, queued publications)."),
		GeneralClockBytes:  r.Gauge("clock_general_bytes", "Live bytes of general-representation thread clocks and queued publications."),
		Demotions:          demotions,
		Read:               dyngran.NewMetrics(r, dyngran.ReadPlane),
		Write:              dyngran.NewMetrics(r, dyngran.WritePlane),
	}
}

// noopDetectorMetrics is the shared disabled set installed when Config.Metrics
// is nil, so detector code increments unconditionally.
var noopDetectorMetrics = NewMetrics(nil)
