package detector

import (
	"testing"

	"repro/internal/djit"
	"repro/internal/progfuzz"
	"repro/internal/sim"
)

// TestReadResetReclaimsInflatedVectors: after a write dominates concurrent
// reads, the inflated read vector is reclaimed under ReadReset.
func TestReadResetReclaimsInflatedVectors(t *testing.T) {
	drive := func(reset bool) int64 {
		d := New(Config{Granularity: Byte, ReadReset: reset})
		d.Fork(0, 1)
		// Concurrent reads inflate the representation.
		d.Read(0, 0x100, 4, 1)
		d.Read(1, 0x100, 4, 2)
		// Both readers publish; a third party absorbs both and writes.
		d.Release(0, 3)
		d.Release(1, 4)
		d.Fork(0, 2)
		d.Acquire(2, 3)
		d.Acquire(2, 4)
		d.Write(2, 0x100, 4, 5)
		if got := len(d.Races()); got != 0 {
			t.Fatalf("dominated write raced: %v", d.Races())
		}
		return d.stats.Plane.VCBytesCur
	}
	kept := drive(false)
	reclaimed := drive(true)
	if reclaimed >= kept {
		t.Errorf("ReadReset did not reclaim: %d vs %d bytes", reclaimed, kept)
	}
}

// TestReadResetKeepsPrecision: verdicts with and without the optimization
// match DJIT+ on fuzzed programs (FastTrack's equivalence proof, checked
// empirically).
func TestReadResetKeepsPrecision(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		prog, _ := progfuzz.Generate(progfuzz.Config{
			Threads: 4, LockedVars: 5, PrivateVars: 2, RacyVars: 2,
			OpsPerThread: 250, Barriers: seed%2 == 0, Seed: seed,
		})
		vars := func(reset bool) map[uint64]bool {
			d := New(Config{Granularity: Byte, ReadReset: reset})
			sim.Run(prog, d, sim.Options{Seed: seed})
			m := map[uint64]bool{}
			for _, r := range d.Races() {
				m[r.Addr&^(progfuzz.VarSpacing-1)] = true
			}
			return m
		}
		plain, reset := vars(false), vars(true)
		dj := djit.New(djit.Options{Granule: 4})
		sim.Run(prog, dj, sim.Options{Seed: seed})
		djVars := map[uint64]bool{}
		for _, r := range dj.Races() {
			djVars[r.Addr&^(progfuzz.VarSpacing-1)] = true
		}
		if len(plain) != len(reset) || len(plain) != len(djVars) {
			t.Fatalf("seed %d: plain=%v reset=%v djit=%v", seed, plain, reset, djVars)
		}
		for v := range djVars {
			if !plain[v] || !reset[v] {
				t.Errorf("seed %d: variable %#x lost", seed, v)
			}
		}
	}
}
