// Race provenance: a bounded flight recorder that explains each verdict.
// When Config.Provenance is set, the detector keeps a per-shard ring of
// recent (post-filter) accesses and sync edges, and every reported race
// carries a Provenance record: both conflicting accesses, the epoch/clock
// comparison that failed, the racing node's granularity-plane state
// transitions (Figure 2 path), and the last few sync edges the shard saw
// before the verdict. Disabled, the recorder is a nil pointer and the hot
// path pays exactly one predictable branch per site — the same
// disabled-is-free contract as the telemetry layer, pinned by
// BenchmarkProvenanceOverhead and the ZeroAlloc guards.
package detector

import (
	"fmt"
	"strings"

	"repro/internal/dyngran"
	"repro/internal/event"
	"repro/internal/vc"
)

const (
	// provAccessRing bounds the recent-access ring per detector shard.
	provAccessRing = 512
	// provSyncRing bounds the recent-sync-edge ring ("last K sync edges").
	provSyncRing = 8
)

// ProvAccess is one endpoint of a reported race.
type ProvAccess struct {
	Tid  uint32 `json:"tid"`
	PC   uint64 `json:"pc"`
	Addr uint64 `json:"addr"`
	Size uint32 `json:"size"`
	// Seq is the event's global sequence number when the access is still
	// resident in the flight-recorder ring (0 = evicted / unknown).
	Seq uint64 `json:"seq,omitempty"`
	Op  string `json:"op,omitempty"` // "read" or "write"
}

// ProvComparison is the happens-before comparison that failed: the
// earlier access's epoch clock was not ≤ the current thread's view of
// the earlier thread.
type ProvComparison struct {
	// Plane names the shadow plane holding the earlier access's clock
	// ("write" or "read").
	Plane string `json:"plane"`
	// PrevTid is the earlier access's thread.
	PrevTid uint32 `json:"prev_tid"`
	// PrevClock is the clock component of the earlier access's epoch.
	PrevClock uint64 `json:"prev_clock"`
	// Observed is the current thread's vector-clock entry for PrevTid at
	// check time; the race verdict is exactly PrevClock > Observed.
	Observed uint64 `json:"observed_clock"`
}

// ProvSyncEdge is one recent synchronization event.
type ProvSyncEdge struct {
	Op  string `json:"op"`
	Tid uint32 `json:"tid"`
	Aux uint64 `json:"aux,omitempty"`
	Seq uint64 `json:"seq,omitempty"`
}

// Provenance is the evidence trail of one reported race. It rides next to
// its Race (same index) through the pipeline merge, the wire report and
// wire.MergeReports, so cluster verdicts stay explainable end-to-end.
type Provenance struct {
	Kind       string         `json:"kind"`
	Current    ProvAccess     `json:"current"`
	Previous   ProvAccess     `json:"previous"`
	Comparison ProvComparison `json:"comparison"`
	// Transitions is the racing node's Figure 2 state path (oldest
	// first), as recorded at the moment the comparison failed.
	Transitions []string `json:"transitions,omitempty"`
	// SyncEdges is the shard's last-K sync-edge window before the verdict.
	SyncEdges []ProvSyncEdge `json:"sync_edges,omitempty"`
}

// String renders the record as an indented, human-readable explanation —
// the form racedetect -v and racectl print.
func (p Provenance) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s race: T%d %s pc=%#x [%#x,+%d) seq=%d  vs  T%d %s pc=%#x [%#x,+%d) seq=%d\n",
		p.Kind,
		p.Current.Tid, p.Current.Op, p.Current.PC, p.Current.Addr, p.Current.Size, p.Current.Seq,
		p.Previous.Tid, p.Previous.Op, p.Previous.PC, p.Previous.Addr, p.Previous.Size, p.Previous.Seq)
	fmt.Fprintf(&b, "  failed comparison: %s-plane epoch %d@T%d > view[T%d]=%d\n",
		p.Comparison.Plane, p.Comparison.PrevClock, p.Comparison.PrevTid,
		p.Comparison.PrevTid, p.Comparison.Observed)
	if len(p.Transitions) > 0 {
		fmt.Fprintf(&b, "  state path: %s\n", strings.Join(p.Transitions, " -> "))
	}
	if len(p.SyncEdges) > 0 {
		b.WriteString("  recent sync edges:")
		for _, e := range p.SyncEdges {
			fmt.Fprintf(&b, " %s(T%d,%#x)", e.Op, e.Tid, e.Aux)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// provAccessRec is one access-ring entry.
type provAccessRec struct {
	tid    vc.TID
	pc     event.PC
	lo, hi uint64
	seq    uint64
}

// flightRecorder is the per-shard bounded recorder. Single-owner, like
// the detector itself; all storage is inline arrays, so steady-state
// recording never allocates.
type flightRecorder struct {
	// seq is the current event's sequence number: supplied by the
	// pipeline router via SetEventSeq (global stream order), or a local
	// per-shard ordinal for serially driven detectors.
	seq    uint64
	extSeq bool

	acc    [provAccessRing]provAccessRec
	accPos int
	accLen int

	syncs   [provSyncRing]ProvSyncEdge
	syncPos int
	syncLen int

	// cmp and transitions hold the most recent failed comparison,
	// captured at the check site (the node's clock may be overwritten
	// before report runs) and consumed by the next appended race.
	cmp         ProvComparison
	transitions []string
}

// tick advances the local event ordinal (no-op once the pipeline supplies
// global sequence numbers).
func (f *flightRecorder) tick() {
	if !f.extSeq {
		f.seq++
	}
}

// tickN advances the local event ordinal by n at once — the run-collapsed
// batch apply accounts a whole run of same-epoch repeats with one call.
// Like tick, a no-op once the pipeline supplies global sequence numbers.
func (f *flightRecorder) tickN(n uint64) {
	if !f.extSeq {
		f.seq += n
	}
}

// noteAccess records one post-filter access into the ring.
func (f *flightRecorder) noteAccess(tid vc.TID, pc event.PC, lo, hi uint64) {
	f.acc[f.accPos] = provAccessRec{tid: tid, pc: pc, lo: lo, hi: hi, seq: f.seq}
	f.accPos = (f.accPos + 1) % provAccessRing
	if f.accLen < provAccessRing {
		f.accLen++
	}
}

// lookupAccess finds the most recent ring entry by tid overlapping
// [lo, hi) — the best-effort recovery of the earlier access's footprint
// and sequence number.
func (f *flightRecorder) lookupAccess(tid vc.TID, lo, hi uint64) (provAccessRec, bool) {
	for i := 1; i <= f.accLen; i++ {
		r := f.acc[(f.accPos-i+provAccessRing)%provAccessRing]
		if r.tid == tid && r.lo < hi && r.hi > lo {
			return r, true
		}
	}
	return provAccessRec{}, false
}

// noteSync records one sync edge (op is a constant string; no allocation).
func (f *flightRecorder) noteSync(op string, tid vc.TID, aux uint64) {
	f.tick()
	f.syncs[f.syncPos] = ProvSyncEdge{Op: op, Tid: uint32(tid), Aux: aux, Seq: f.seq}
	f.syncPos = (f.syncPos + 1) % provSyncRing
	if f.syncLen < provSyncRing {
		f.syncLen++
	}
}

// recentSyncs copies the ring oldest-first (race-report path only).
func (f *flightRecorder) recentSyncs() []ProvSyncEdge {
	if f.syncLen == 0 {
		return nil
	}
	out := make([]ProvSyncEdge, f.syncLen)
	for i := 0; i < f.syncLen; i++ {
		out[f.syncLen-1-i] = f.syncs[(f.syncPos-1-i+provSyncRing)%provSyncRing]
	}
	return out
}

// captureCmp stashes the failed comparison and the racing node's state
// path at the moment the check fails. Runs only on the race path, so the
// transition-slice allocation is off the steady state.
func (f *flightRecorder) captureCmp(plane string, prevTid vc.TID, prevClock, observed uint64, n *dyngran.Node) {
	f.cmp = ProvComparison{
		Plane: plane, PrevTid: uint32(prevTid),
		PrevClock: prevClock, Observed: observed,
	}
	f.transitions = nil
	if n != nil {
		hist := n.StateHistory()
		f.transitions = make([]string, len(hist))
		for i, s := range hist {
			f.transitions[i] = s.String()
		}
	}
}

// noteSync is the detector-level hook: one predictable branch when
// provenance is disabled.
func (d *Detector) noteSync(op string, tid vc.TID, aux uint64) {
	if d.prov != nil {
		d.prov.noteSync(op, tid, aux)
	}
}

// SetEventSeq pins the recorder's event sequence to the router's global
// stream ordinal — the pipeline calls it before applying each record, so
// provenance seq numbers agree across shards (and across cluster
// members). No-op when provenance is disabled.
func (d *Detector) SetEventSeq(seq uint64) {
	if d.prov != nil {
		d.prov.seq = seq
		d.prov.extSeq = true
	}
}

// Provs returns the provenance records, index-aligned with Races().
// Empty unless Config.Provenance was set.
func (d *Detector) Provs() []Provenance { return d.provs }

// provOps maps a race kind to the (current, previous) access operations.
func provOps(kind string) (cur, prev string) {
	switch kind {
	case "write-write":
		return "write", "write"
	case "read-write":
		return "write", "read"
	case "write-read":
		return "read", "write"
	}
	return "", ""
}

// appendProvenance builds and stores the record for the race just
// appended to d.races. Called from report() on the success path only.
func (d *Detector) appendProvenance(r Race) {
	f := d.prov
	curOp, prevOp := provOps(r.Kind.String())
	p := Provenance{
		Kind: r.Kind.String(),
		Current: ProvAccess{
			Tid: uint32(r.Tid), PC: uint64(r.PC),
			Addr: r.Addr, Size: r.Size, Seq: f.seq, Op: curOp,
		},
		Previous: ProvAccess{
			Tid: uint32(r.PrevTid), PC: uint64(r.PrevPC),
			Addr: r.Addr, Size: r.Size, Op: prevOp,
		},
		Comparison:  f.cmp,
		Transitions: f.transitions,
		SyncEdges:   f.recentSyncs(),
	}
	if rec, ok := f.lookupAccess(r.PrevTid, r.Addr, r.Addr+uint64(r.Size)); ok {
		p.Previous.Addr = rec.lo
		p.Previous.Size = uint32(rec.hi - rec.lo)
		p.Previous.Seq = rec.seq
	}
	f.transitions = nil // consumed; don't alias into a later record
	d.provs = append(d.provs, p)
}
