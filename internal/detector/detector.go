// Package detector is the race-detection front end: an event.Sink that
// drives the FastTrack algorithm (internal/fasttrack) over shadow planes
// (internal/dyngran) at a configurable detection granularity. It implements
// the instrumentation path of Figure 3 of the paper:
//
//	void memoryread(addr, size, tid):
//	    if nonshared(addr) or sameepoch(tid, addr): return
//	    L = findreadaccess(addr)
//	    if L == nil:            // first access
//	        L = insertread(addr, size); sharefirstepoch(L); L.state = Init
//	    else if L.state == Init: // second epoch access
//	        split(L); sharesecondepoch(L); L.state = Shared or Private
//	    if racefound(addr): splitandsetrace(L)
//	    insertepochaccess(tid, addr)
//
// with the same-epoch test served by per-thread bitmaps
// (internal/epochbitmap) that reset at each lock release.
//
// Three granularities are supported. Byte tracks each access footprint
// exactly; Word rounds footprints to 4-byte boundaries (merging and masking
// neighbouring locations within a word); Dynamic starts at byte granularity
// and lets neighbouring locations share one clock under the Figure 2 state
// machine. Byte and Word are the fixed-granularity baselines of Table 1;
// they reuse the same node machinery with sharing disabled, so all modes
// are measured over identical code.
package detector

import (
	"fmt"

	"repro/internal/dyngran"
	"repro/internal/epochbitmap"
	"repro/internal/event"
	"repro/internal/fasttrack"
	"repro/internal/shadow"
	"repro/internal/vc"
)

// Granularity selects the detection unit.
type Granularity uint8

const (
	// Byte tracks locations at access-footprint granularity (the paper's
	// "byte granularity": detection unit as fine as a single byte).
	Byte Granularity = iota
	// Word masks footprints to 4-byte boundaries.
	Word
	// Dynamic starts at byte granularity and shares clocks between
	// neighbouring locations per the vector-clock state machine.
	Dynamic
)

func (g Granularity) String() string {
	switch g {
	case Byte:
		return "byte"
	case Word:
		return "word"
	case Dynamic:
		return "dynamic"
	default:
		return "?"
	}
}

// ClockMode selects the thread-clock representation; see
// fasttrack.ClockMode and DESIGN.md §12.
type ClockMode = fasttrack.ClockMode

// Clock modes re-exported for configuration surfaces.
const (
	// ClockGeneral uses pooled vector clocks for every thread (default).
	ClockGeneral = fasttrack.ClockGeneral
	// ClockCompact uses the structure-aware task-tree clock layer, with
	// per-thread demotion to general clocks on unstructured sync edges.
	ClockCompact = fasttrack.ClockCompact
)

// Config configures a Detector.
type Config struct {
	// Granularity selects the detection unit.
	Granularity Granularity
	// Clock selects the thread-clock representation. The default
	// (ClockGeneral) is verdict-identical to ClockCompact; compact mode
	// trades the general O(threads) clock work for near-constant-size
	// encodings on structured (fork/join, channel, WaitGroup) sync graphs.
	Clock ClockMode
	// NoInitState disables the Init state (Table 5 ablation): the sharing
	// decision is made once, at the first access, and is final.
	NoInitState bool
	// NoInitSharing disables the temporary first-epoch sharing while
	// keeping the Init state (Table 5 ablation): locations hold private
	// clocks during their first epoch and decide sharing at the second
	// epoch access.
	NoInitSharing bool
	// WriteGuidedReads enables the future-work extension of Section VII:
	// the read-plane sharing decision consults the write plane first and
	// skips the read-clock comparison when the write clocks already ruled
	// sharing out.
	WriteGuidedReads bool
	// ReadReset enables FastTrack's write-exclusive optimization: after a
	// write that dominates every recorded read of its footprint, inflated
	// read vectors in the range are reset to the empty epoch, reclaiming
	// their storage (the full FastTrack rule; the default keeps DJIT+'s
	// read history, which is equally precise but larger).
	ReadReset bool
	// ReshareInterval enables the other Section VII future-work extension
	// ("accommodate access behavior after the second epoch so that the
	// detection granularity can be changed more dynamically"): a Private
	// location re-runs the sharing decision after this many
	// distinct-epoch accesses. 0 keeps the paper's at-most-two-decisions
	// rule.
	ReshareInterval uint8
	// Suppress hides races whose code site belongs to one of these
	// modules (the paper suppresses libc and ld, as DRD does). Nil means
	// the default suppression set; use an empty non-nil slice for none.
	Suppress []event.Module

	// Provenance enables the race flight recorder (see provenance.go):
	// every reported race carries a Provenance record naming both
	// accesses, the failed epoch/clock comparison, the racing node's
	// state transitions and the last few sync edges. Disabled (the
	// default), the hot path pays one predictable branch per site.
	Provenance bool

	// Metrics is the telemetry instrument set the detector updates (see
	// NewMetrics). Nil disables instrumentation at the cost of one
	// predictable branch per site. Sharded detectors may share one Metrics:
	// all instruments are atomic, and summed families stay consistent.
	Metrics *Metrics

	// Shards and Shard make the detector shard-constructible for the
	// parallel pipeline (internal/pipeline): when Shards > 1 the detector
	// owns only the shadow blocks b (b = addr >> shadow.BlockShift) with
	// b % Shards == Shard. The caller must route it exactly the memory
	// accesses of its blocks (split at block boundaries) plus every sync
	// event; the detector then restricts its shadow planes and epoch
	// bitmaps to that block subset and clamps range operations (Free) to
	// it. Shards == 0 or 1 means unsharded (the serial detector).
	Shards int
	Shard  int
}

// Sharded reports whether the configuration restricts the detector to a
// block subset.
func (c Config) Sharded() bool { return c.Shards > 1 }

// Owns reports whether addr falls in the configured block subset (always
// true for an unsharded detector).
func (c Config) Owns(addr uint64) bool {
	if !c.Sharded() {
		return true
	}
	return int(addr>>shadow.BlockShift%uint64(c.Shards)) == c.Shard
}

// DefaultSuppress is the default suppression set: the paper applies DRD-like
// suppression rules (libc, ld) and additionally suppresses the races DRD
// reports from inside the pthread library.
var DefaultSuppress = []event.Module{event.ModuleLibc, event.ModuleLd, event.ModulePthread}

// Race is one reported data race: the first race detected on a location.
type Race struct {
	Kind fasttrack.RaceKind
	// Addr and Size identify the accessed location (footprint).
	Addr uint64
	Size uint32
	// Tid and PC identify the access that completed the race.
	Tid vc.TID
	PC  event.PC
	// PrevTid and PrevPC identify the earlier conflicting access.
	PrevTid vc.TID
	PrevPC  event.PC
}

func (r Race) String() string {
	return fmt.Sprintf("%s race at %#x (%dB): thread %d at pc %#x vs thread %d at pc %#x",
		r.Kind, r.Addr, r.Size, r.Tid, uint32(r.PC), r.PrevTid, uint32(r.PrevPC))
}

// Stats aggregates everything the evaluation tables need from one run.
type Stats struct {
	// Accesses is the number of read/write events seen; SameEpoch is how
	// many the per-thread bitmaps filtered (Table 4); NonShared is how
	// many were stack accesses filtered by the Figure 3 first-line check.
	Accesses  uint64
	SameEpoch uint64
	NonShared uint64

	// Plane holds node counts, clock bytes, sharing and split counts
	// (Tables 2 and 3).
	Plane dyngran.Stats

	// HashPeakBytes, VCPeakBytes, BitmapPeakBytes are the three memory
	// components of Table 2; TotalPeakBytes is the peak of their sum.
	HashPeakBytes   int64
	VCPeakBytes     int64
	BitmapPeakBytes int64
	TotalPeakBytes  int64

	// Races is the number of reported races; Suppressed counts races
	// hidden by module suppression.
	Races      uint64
	Suppressed uint64

	// SharingComparisons counts clock comparisons made for sharing
	// decisions (the cost the write-guided extension reduces).
	SharingComparisons uint64

	// VCPoolHits/VCPoolMisses count vector-clock backing-array requests
	// served from (resp. missed by) the detector's size-classed clock
	// pool; VCInterns counts read vectors deduplicated through the intern
	// table. All zero when the memory layer's pooling is not wired (e.g.
	// a detector built before the pool existed, or non-FastTrack tools).
	VCPoolHits, VCPoolMisses uint64
	VCInterns                uint64

	// Structure-aware clock layer (Config.Clock == ClockCompact).
	// ClockStructuredThreads is how many threads still hold compact
	// clocks; ClockDemotions counts one-way falls to the general
	// representation. ClockCompactBytes/PeakBytes account the compact
	// arena (tasks, snapshots, queued publications);
	// ClockGeneralBytes accounts general-representation thread clocks and
	// queued vector-clock publications (in general mode, the baseline the
	// compact layer is compared against), and ClockGeneralPeakBytes its
	// high-water mark — the peak-to-peak counterpart of
	// ClockCompactPeakBytes.
	ClockStructuredThreads uint64
	ClockDemotions         uint64
	ClockCompactBytes      int64
	ClockCompactPeakBytes  int64
	ClockGeneralBytes      int64
	ClockGeneralPeakBytes  int64
}

// Detector is the race detector; it implements event.Sink.
type Detector struct {
	cfg Config

	th    *fasttrack.Threads
	read  *dyngran.Plane
	write *dyngran.Plane

	bitmaps  []*epochbitmap.Bitmap
	suppress [8]bool

	// One-entry bitmap cache: event streams run many consecutive accesses
	// by the same thread (a scheduling quantum is 64 events), so the
	// per-access bitmap lookup almost always resolves to the previous
	// thread's bitmap. Bitmap pointers are stable, so the cache never needs
	// invalidation.
	lastTid vc.TID
	lastBM  *epochbitmap.Bitmap

	// racedLocs dedups reports across the read and write planes: one
	// location's first race is reported once even when both its read and
	// write shadow nodes go racy.
	racedLocs map[uint64]bool

	// met is never nil (New installs the disabled set when Config.Metrics
	// is nil), so increments need no guard beyond the instruments' own
	// nil-receiver checks.
	met *Metrics

	// vcs is the detector's size-classed vector-clock pool; every clock the
	// detector creates (thread/lock/barrier clocks, read-vector inflations,
	// copy-on-write splits) allocates and recycles through it. intern
	// deduplicates equal read vectors behind canonical shared arrays. Both
	// are single-owner: one detector = one goroutine = one pool.
	vcs    *vc.Pool
	intern *vc.Interner

	stats Stats
	races []Race

	// prov is the provenance flight recorder (nil unless enabled); provs
	// is index-aligned with races.
	prov  *flightRecorder
	provs []Provenance
}

// New returns a detector with the given configuration.
func New(cfg Config) *Detector {
	d := &Detector{
		cfg:       cfg,
		th:        fasttrack.NewThreads(),
		racedLocs: make(map[uint64]bool),
		lastTid:   vc.NoTID,
	}
	d.met = cfg.Metrics
	if d.met == nil {
		d.met = noopDetectorMetrics
	}
	if cfg.Provenance {
		d.prov = &flightRecorder{}
	}
	d.vcs = vc.NewPool()
	d.intern = vc.NewInterner(d.vcs)
	d.th.SetPool(d.vcs)
	d.th.SetClockMode(cfg.Clock)
	if cfg.Shard == 0 {
		// Sync events are broadcast to every shard, so only shard 0 feeds
		// the (shared) clock instruments; the others would multiply them.
		met := d.met
		d.th.OnDemote = func(r fasttrack.DemoteReason) {
			met.Demotions[r].Inc()
		}
	}
	d.read = dyngran.NewPlane(dyngran.ReadPlane, &d.stats.Plane)
	d.write = dyngran.NewPlane(dyngran.WritePlane, &d.stats.Plane)
	d.read.SetPool(d.vcs)
	d.write.SetPool(d.vcs)
	d.read.SetMetrics(d.met.Read)
	d.write.SetMetrics(d.met.Write)
	sup := cfg.Suppress
	if sup == nil {
		sup = DefaultSuppress
	}
	for _, m := range sup {
		d.suppress[m] = true
	}
	return d
}

// Races returns the reported races in detection order.
func (d *Detector) Races() []Race { return d.races }

// Stats returns a snapshot of the run statistics with the memory components
// finalized.
func (d *Detector) Stats() Stats {
	s := d.stats
	s.HashPeakBytes = d.read.Tab.PeakBytes() + d.write.Tab.PeakBytes()
	s.VCPeakBytes = s.Plane.VCBytesPeak + d.th.LockClockBytes()
	var bm int64
	for _, b := range d.bitmaps {
		if b != nil {
			bm += b.PeakBytes()
		}
	}
	s.BitmapPeakBytes = bm
	if s.TotalPeakBytes < s.HashPeakBytes+s.VCPeakBytes+s.BitmapPeakBytes {
		s.TotalPeakBytes = s.HashPeakBytes + s.VCPeakBytes + s.BitmapPeakBytes
	}
	s.VCPoolHits, s.VCPoolMisses = d.vcs.Stats()
	s.VCInterns = d.intern.Hits()
	s.ClockStructuredThreads = uint64(d.th.StructuredThreads())
	s.ClockDemotions, _ = d.th.Demotions()
	s.ClockCompactBytes, s.ClockCompactPeakBytes = d.th.CompactClockBytes()
	s.ClockGeneralBytes = d.th.GeneralClockBytes()
	s.ClockGeneralPeakBytes = d.th.GeneralClockPeakBytes()
	if d.cfg.Shard == 0 {
		d.met.StructuredThreads.Set(int64(s.ClockStructuredThreads))
		d.met.CompactClockBytes.Set(s.ClockCompactBytes)
		d.met.GeneralClockBytes.Set(s.ClockGeneralBytes)
	}
	return s
}

func (d *Detector) bitmap(t vc.TID) *epochbitmap.Bitmap {
	if t == d.lastTid {
		return d.lastBM
	}
	for int(t) >= len(d.bitmaps) {
		d.bitmaps = append(d.bitmaps, nil)
	}
	if d.bitmaps[t] == nil {
		d.bitmaps[t] = epochbitmap.New()
	}
	d.lastTid, d.lastBM = t, d.bitmaps[t]
	return d.lastBM
}

// footprint computes the tracked address range of an access under the
// configured granularity.
func (d *Detector) footprint(addr uint64, size uint64) (uint64, uint64) {
	lo, hi := addr, addr+size
	if d.cfg.Granularity == Word {
		lo &^= 3
		hi = (hi + 3) &^ 3
	}
	return lo, hi
}

// trackTotal refreshes the running total-memory peak (Table 2's overhead
// total is the peak of the sum of the three components, which individual
// component peaks would overstate when they crest at different times).
func (d *Detector) trackTotal() {
	cur := d.read.Tab.Bytes() + d.write.Tab.Bytes() + d.stats.Plane.VCBytesCur
	for _, b := range d.bitmaps {
		if b != nil {
			cur += b.Bytes()
		}
	}
	if cur > d.stats.TotalPeakBytes {
		d.stats.TotalPeakBytes = cur
	}
}

// report emits the first race of a location unless suppressed.
func (d *Detector) report(kind fasttrack.RaceKind, lo, hi uint64, tid vc.TID, pc event.PC, prevTid vc.TID, prevPC event.PC) {
	if d.suppress[pc.Module()] || d.suppress[prevPC.Module()] {
		d.stats.Suppressed++
		d.met.Suppressed.Inc()
		return
	}
	if d.racedLocs[lo] {
		return // the location's first race was already reported
	}
	d.racedLocs[lo] = true
	d.stats.Races++
	d.met.Races.Inc()
	r := Race{
		Kind: kind, Addr: lo, Size: uint32(hi - lo),
		Tid: tid, PC: pc, PrevTid: prevTid, PrevPC: prevPC,
	}
	d.races = append(d.races, r)
	if d.prov != nil {
		d.appendProvenance(r)
	}
}

// checkReadPlane scans the read plane in [lo, hi) for a recorded read not
// ordered before tc (a read-write race against the current write).
func (d *Detector) checkReadPlane(lo, hi uint64, tc vc.View) (vc.TID, event.PC, bool) {
	var raceTid vc.TID = vc.NoTID
	var racePC event.PC
	var last *dyngran.Node
	d.read.Tab.ForRange(lo, hi, func(_ uint64, n *dyngran.Node) bool {
		if n == last {
			return true
		}
		last = n
		if !n.R.LEQ(tc) {
			raceTid = n.R.RacingTID(tc)
			racePC = n.PC
			if d.prov != nil {
				prev := uint64(n.R.E.Clock())
				if n.R.Shared() {
					prev = uint64(n.R.V.Get(raceTid))
				}
				d.prov.captureCmp("read", raceTid, prev, uint64(tc.Get(raceTid)), n)
			}
			return false
		}
		return true
	})
	return raceTid, racePC, raceTid != vc.NoTID
}

// Write processes a shared write (the memorywrite instrumentation path).
func (d *Detector) Write(tid vc.TID, addr uint64, size uint32, pc event.PC) {
	if event.NonShared(addr) {
		d.stats.NonShared++
		d.met.NonShared.Inc()
		return
	}
	d.stats.Accesses++
	d.met.Accesses.Inc()
	if d.prov != nil {
		d.prov.tick()
	}
	lo, hi := d.footprint(addr, uint64(size))
	bm := d.bitmap(tid)
	if bm.Write(lo, hi) {
		d.stats.SameEpoch++
		d.met.SameEpoch.Inc()
		return
	}
	if d.prov != nil {
		d.prov.noteAccess(tid, pc, lo, hi)
	}
	tc := d.th.View(tid)
	e := d.th.Epoch(tid)

	d.segments(d.write, lo, hi, func(segLo, segHi uint64, n *dyngran.Node) {
		d.writeSegment(segLo, segHi, n, tid, tc, e, pc, bm)
	})
	if d.cfg.ReadReset {
		d.read.DeflateReads(lo, hi, tc)
	}
	d.trackTotal()
}

// writeSegment handles one maximal run of a write footprint that lies in a
// single write node (or in unshadowed memory when n is nil).
func (d *Detector) writeSegment(lo, hi uint64, n *dyngran.Node, tid vc.TID, tc vc.View, e vc.Epoch, pc event.PC, bm *epochbitmap.Bitmap) {
	p := d.write
	if n == nil {
		// First access of the location.
		d.stats.Plane.LocCreations++
		d.met.LocCreations.Inc()
		rTid, rPC, raced := d.checkReadPlane(lo, hi, tc)
		if !raced && d.firstEpochSharing() {
			if ext, ok := p.TryExtendLeft(lo, hi, e, nil); ok {
				ext.PC = pc
				return
			}
		}
		n = p.NewNode(lo, hi, dyngran.Init)
		n.W = e
		n.PC = pc
		if raced {
			n.SetState(dyngran.Race)
			n.Reported = true
			p.Met.ToRace.Inc()
			d.report(fasttrack.ReadWrite, lo, hi, tid, pc, rTid, rPC)
			return
		}
		d.decideFirstAccess(p, n)
		return
	}

	switch n.State {
	case dyngran.Init:
		if n.W == e {
			return // continuation of the location's first epoch
		}
		// Second epoch access: split for the new sharing decision.
		n = p.Split(n, lo, hi)
		if d.raceOnWrite(n, lo, hi, tid, tc, pc) {
			return
		}
		n.W = e
		n.PC = pc
		n = p.DecideSecondEpoch(n)
		d.stats.SharingComparisons += 2
		d.met.SharingComparisons.Add(2)

	case dyngran.Shared:
		if d.raceOnWrite(n, lo, hi, tid, tc, pc) {
			return
		}
		// The shared clock is updated for the whole range; the bitmap
		// covers the range so neighbours count as same-epoch accesses.
		n.W = e
		n.PC = pc
		d.markShared(p, n, bm)

	case dyngran.Private, dyngran.Race:
		if n.Lo < lo || n.Hi > hi {
			n = p.Split(n, lo, hi) // private clocks stay per-location
		}
		if n.State == dyngran.Race && n.Reported {
			n.W = e
			n.PC = pc
			return
		}
		if d.raceOnWrite(n, lo, hi, tid, tc, pc) {
			return
		}
		n.W = e
		n.PC = pc
		d.maybeReshare(p, n, bm)
	}
}

// maybeReshare implements the adaptive-resharing extension: a Private
// location whose neighbourhood has stabilized gets a fresh sharing
// decision every ReshareInterval distinct-epoch accesses, letting the
// granularity keep adapting after the second epoch.
func (d *Detector) maybeReshare(p *dyngran.Plane, n *dyngran.Node, bm *epochbitmap.Bitmap) {
	if d.cfg.ReshareInterval == 0 || n.State != dyngran.Private {
		return
	}
	n.Settled++
	if n.Settled < d.cfg.ReshareInterval {
		return
	}
	n.Settled = 0
	d.stats.SharingComparisons += 2
	d.met.SharingComparisons.Add(2)
	d.met.Reshares.Inc()
	n = p.DecideSecondEpoch(n)
	d.markShared(p, n, bm)
}

// raceOnWrite runs the FastTrack write checks for node n (write plane) and
// the read plane over [lo, hi); on a race it dissolves sharing, marks the
// location, and reports. It returns true when a race was found.
func (d *Detector) raceOnWrite(n *dyngran.Node, lo, hi uint64, tid vc.TID, tc vc.View, pc event.PC) bool {
	kind, other := fasttrack.CheckWrite(n.W, nil, tc)
	var otherPC event.PC
	if kind == fasttrack.NoRace {
		if rTid, rPC, raced := d.checkReadPlane(lo, hi, tc); raced {
			kind, other, otherPC = fasttrack.ReadWrite, rTid, rPC
		}
	} else {
		otherPC = n.PC
		if d.prov != nil {
			d.prov.captureCmp("write", other, uint64(n.W.Clock()), uint64(tc.Get(other)), n)
		}
	}
	if kind == fasttrack.NoRace {
		return false
	}
	e := d.th.Epoch(tid)
	n = d.write.SetRace(n, lo, hi)
	n.W = e
	n.PC = pc
	d.report(kind, lo, hi, tid, pc, other, otherPC)
	return true
}

// Read processes a shared read (the Figure 3 path).
func (d *Detector) Read(tid vc.TID, addr uint64, size uint32, pc event.PC) {
	if event.NonShared(addr) {
		d.stats.NonShared++
		d.met.NonShared.Inc()
		return
	}
	d.stats.Accesses++
	d.met.Accesses.Inc()
	if d.prov != nil {
		d.prov.tick()
	}
	lo, hi := d.footprint(addr, uint64(size))
	bm := d.bitmap(tid)
	if bm.Read(lo, hi) {
		d.stats.SameEpoch++
		d.met.SameEpoch.Inc()
		return
	}
	if d.prov != nil {
		d.prov.noteAccess(tid, pc, lo, hi)
	}
	tc := d.th.View(tid)
	e := d.th.Epoch(tid)

	d.segments(d.read, lo, hi, func(segLo, segHi uint64, n *dyngran.Node) {
		d.readSegment(segLo, segHi, n, tid, tc, e, pc, bm)
	})
	d.trackTotal()
}

// readSegment handles one maximal run of a read footprint within a single
// read node (or unshadowed memory).
func (d *Detector) readSegment(lo, hi uint64, n *dyngran.Node, tid vc.TID, tc vc.View, e vc.Epoch, pc event.PC, bm *epochbitmap.Bitmap) {
	p := d.read
	if n == nil {
		d.stats.Plane.LocCreations++
		d.met.LocCreations.Inc()
		wTid, wPC, raced := d.checkWritePlane(lo, hi, tc)
		if !raced && d.firstEpochSharing() {
			fresh := fasttrack.Read{E: e}
			if ext, ok := p.TryExtendLeft(lo, hi, 0, &fresh); ok {
				ext.PC = pc
				return
			}
		}
		n = p.NewNode(lo, hi, dyngran.Init)
		d.updateRead(n, tid, e, tc)
		n.PC = pc
		if raced {
			n.SetState(dyngran.Race)
			n.Reported = true
			p.Met.ToRace.Inc()
			d.report(fasttrack.WriteRead, lo, hi, tid, pc, wTid, wPC)
			return
		}
		d.decideFirstAccess(p, n)
		return
	}

	switch n.State {
	case dyngran.Init:
		if d.sameReadEpoch(n, e) {
			return
		}
		n = p.Split(n, lo, hi)
		if d.raceOnRead(n, lo, hi, tid, tc, pc) {
			d.updateRead(n, tid, e, tc) // record the read even on race
			return
		}
		conflict := d.updateRead(n, tid, e, tc)
		n.PC = pc
		if !conflict || !d.readShareBlocked(n) {
			n = d.decideReadSharing(p, n)
			_ = n
		} else {
			n.SetState(dyngran.Private)
			n.InitShared = false
			p.Met.ToPrivate.Inc()
		}

	case dyngran.Shared:
		if d.raceOnRead(n, lo, hi, tid, tc, pc) {
			return
		}
		d.updateRead(n, tid, e, tc)
		n.PC = pc
		d.markShared(p, n, bm)

	case dyngran.Private, dyngran.Race:
		if n.Lo < lo || n.Hi > hi {
			n = p.Split(n, lo, hi)
		}
		if n.State == dyngran.Race && n.Reported {
			d.updateRead(n, tid, e, tc)
			n.PC = pc
			return
		}
		if d.raceOnRead(n, lo, hi, tid, tc, pc) {
			d.updateRead(n, tid, e, tc)
			return
		}
		if conflict := d.updateRead(n, tid, e, tc); !conflict {
			d.maybeReshare(p, n, bm)
		}
		n.PC = pc
	}
}

// raceOnRead runs the FastTrack read check (against the write plane) for a
// read of [lo, hi); on a race it dissolves sharing of the read node, marks
// and reports. Returns true when a race was found.
func (d *Detector) raceOnRead(n *dyngran.Node, lo, hi uint64, tid vc.TID, tc vc.View, pc event.PC) bool {
	wTid, wPC, raced := d.checkWritePlane(lo, hi, tc)
	if !raced {
		return false
	}
	n = d.read.SetRace(n, lo, hi)
	n.PC = pc
	d.report(fasttrack.WriteRead, lo, hi, tid, pc, wTid, wPC)
	return true
}

// checkWritePlane scans the write plane in [lo, hi) for a write not ordered
// before tc.
func (d *Detector) checkWritePlane(lo, hi uint64, tc vc.View) (vc.TID, event.PC, bool) {
	var raceTid vc.TID = vc.NoTID
	var racePC event.PC
	var last *dyngran.Node
	d.write.Tab.ForRange(lo, hi, func(_ uint64, n *dyngran.Node) bool {
		if n == last {
			return true
		}
		last = n
		if kind, other := fasttrack.CheckRead(n.W, tc); kind != fasttrack.NoRace {
			raceTid = other
			racePC = n.PC
			if d.prov != nil {
				d.prov.captureCmp("write", other, uint64(n.W.Clock()), uint64(tc.Get(other)), n)
			}
			return false
		}
		return true
	})
	return raceTid, racePC, raceTid != vc.NoTID
}

// updateRead records a read into n's adaptive representation, accounting
// for epoch→vector inflation. It reports whether the representation is (or
// became) read-shared — the paper's "read-read conflict".
func (d *Detector) updateRead(n *dyngran.Node, tid vc.TID, e vc.Epoch, tc vc.View) bool {
	before := n.R.Bytes()
	if n.R.UpdateIn(d.vcs, tid, e, tc) {
		// Fresh inflation: many locations of an initialize-then-read region
		// inflate to the same small vector; interning folds them into one
		// canonical shared array (a later mutation copy-on-writes away).
		n.R.V = d.intern.Intern(n.R.V)
	}
	if after := n.R.Bytes(); after != before {
		d.read.AccountInflation(int64(after - before))
	}
	return n.R.Shared()
}

// sameReadEpoch reports whether read node n already records exactly the
// current epoch (the location's first epoch is still running).
func (d *Detector) sameReadEpoch(n *dyngran.Node, e vc.Epoch) bool {
	return !n.R.Shared() && n.R.E == e
}

// firstEpochSharing reports whether the temporary Init-state sharing paths
// (including the extend-left fast path) are active.
func (d *Detector) firstEpochSharing() bool {
	return d.cfg.Granularity == Dynamic && !d.cfg.NoInitState && !d.cfg.NoInitSharing
}

// decideFirstAccess applies the first-access sharing policy to a fresh
// node. No bitmap marking happens here: during a location's first epoch
// the shared node only ever grows toward addresses that are about to be
// accessed anyway, so range-marking would cost O(range) per access for no
// filtering benefit.
func (d *Detector) decideFirstAccess(p *dyngran.Plane, n *dyngran.Node) {
	if d.cfg.Granularity != Dynamic {
		n.SetState(dyngran.Private)
		p.Met.ToPrivate.Inc()
		return
	}
	if d.cfg.NoInitState {
		// Table 5 ablation: one final decision, made now.
		d.stats.SharingComparisons += 2
		d.met.SharingComparisons.Add(2)
		p.DecideSecondEpoch(n)
		return
	}
	if d.cfg.NoInitSharing {
		n.InitShared = false
		return
	}
	d.stats.SharingComparisons += 2
	d.met.SharingComparisons.Add(2)
	p.TryFirstEpochShare(n)
}

// decideReadSharing makes the second-epoch decision for a read node,
// optionally consulting the write plane first (the Section VII extension).
func (d *Detector) decideReadSharing(p *dyngran.Plane, n *dyngran.Node) *dyngran.Node {
	if d.cfg.WriteGuidedReads {
		// If the corresponding write location is Private, its neighbours'
		// clocks differed; the read clocks would have to be compared for
		// nothing, so predict Private without comparing.
		if w := d.write.Tab.Get(n.Lo); w != nil && w.State == dyngran.Private {
			n.SetState(dyngran.Private)
			n.InitShared = false
			p.Met.ToPrivate.Inc()
			p.Met.ShareRejected.Inc()
			return n
		}
	}
	d.stats.SharingComparisons += 2
	d.met.SharingComparisons.Add(2)
	return p.DecideSecondEpoch(n)
}

// readShareBlocked reports whether a read-read conflict should block
// sharing for this node (paper: "no read-read conflict for a read
// location" gates the Shared transition).
func (d *Detector) readShareBlocked(n *dyngran.Node) bool { return n.R.Shared() }

// markShared extends the same-epoch bitmap over a node's whole range when
// the node covers more than one location, so later accesses to its other
// locations short-circuit — the mechanism that raises the same-epoch
// percentage under dynamic granularity (Table 4).
func (d *Detector) markShared(p *dyngran.Plane, n *dyngran.Node, bm *epochbitmap.Bitmap) {
	if n.Hi-n.Lo <= 1 || n.Locs <= 1 {
		return
	}
	if p.Kind == dyngran.WritePlane {
		bm.MarkWrite(n.Lo, n.Hi)
	} else {
		bm.MarkRead(n.Lo, n.Hi)
	}
}

// segments walks [lo, hi) as maximal runs covered by one node (or none) and
// applies f to each. f may mutate the plane; the walk re-reads the shadow
// table after every step.
func (d *Detector) segments(p *dyngran.Plane, lo, hi uint64, f func(segLo, segHi uint64, n *dyngran.Node)) {
	cur := lo
	for cur < hi {
		n := p.Tab.Get(cur)
		if n != nil {
			segHi := n.Hi
			if segHi > hi {
				segHi = hi
			}
			f(cur, segHi, n)
			cur = segHi
			continue
		}
		gapHi := cur + 1
		for gapHi < hi && p.Tab.Get(gapHi) == nil {
			gapHi++
		}
		f(cur, gapHi, nil)
		cur = gapHi
	}
}

// ---- Synchronization events ----

// Acquire applies T_t ⊔= L_l.
func (d *Detector) Acquire(tid vc.TID, l event.LockID) {
	d.noteSync("acquire", tid, uint64(l))
	d.th.Acquire(tid, l)
}

// Release applies L_l ⊔= T_t, starts tid's next epoch, and resets the
// thread's same-epoch bitmap (Section IV.A).
func (d *Detector) Release(tid vc.TID, l event.LockID) {
	d.noteSync("release", tid, uint64(l))
	d.th.Release(tid, l)
	d.bitmap(tid).Reset()
}

// AcquireShared applies a rwlock read-lock's clock update.
func (d *Detector) AcquireShared(tid vc.TID, l event.LockID) {
	d.noteSync("acquire-shared", tid, uint64(l))
	d.th.AcquireShared(tid, l)
}

// ReleaseShared publishes the reader's time to the lock's reader clock and
// starts the reader's next epoch (resetting its same-epoch bitmap).
func (d *Detector) ReleaseShared(tid vc.TID, l event.LockID) {
	d.noteSync("release-shared", tid, uint64(l))
	d.th.ReleaseShared(tid, l)
	d.bitmap(tid).Reset()
}

// Fork orders the child after the parent's past.
func (d *Detector) Fork(parent, child vc.TID) {
	d.noteSync("fork", parent, uint64(child))
	d.th.Fork(parent, child)
	d.bitmap(parent).Reset()
}

// Join orders the parent after the child.
func (d *Detector) Join(parent, child vc.TID) {
	d.noteSync("join", parent, uint64(child))
	d.th.Join(parent, child)
}

// BarrierArrive contributes tid's clock to the barrier and starts a new
// epoch (resetting the bitmap).
func (d *Detector) BarrierArrive(tid vc.TID, b event.BarrierID) {
	d.noteSync("barrier-arrive", tid, uint64(b))
	d.th.BarrierArrive(tid, b)
	d.bitmap(tid).Reset()
}

// BarrierDepart absorbs the barrier clock.
func (d *Detector) BarrierDepart(tid vc.TID, b event.BarrierID) {
	d.noteSync("barrier-depart", tid, uint64(b))
	d.th.BarrierDepart(tid, b)
}

// ChanSend publishes tid's time for the matching receive (and absorbs the
// slot-reuse back edge on buffered channels). It starts a new epoch, so the
// same-epoch bitmap resets.
func (d *Detector) ChanSend(tid vc.TID, ch event.ChanID, cap int) {
	d.noteSync("chan-send", tid, uint64(uint32(ch)))
	d.th.ChanSend(tid, ch, cap)
	d.bitmap(tid).Reset()
}

// ChanRecv absorbs the matching send's publication and publishes for the
// back edge; a new epoch starts.
func (d *Detector) ChanRecv(tid vc.TID, ch event.ChanID, cap int) {
	d.noteSync("chan-recv", tid, uint64(uint32(ch)))
	d.th.ChanRecv(tid, ch, cap)
	d.bitmap(tid).Reset()
}

// ChanAck absorbs the unbuffered rendezvous back edge (acquire only — no
// new epoch, no bitmap reset).
func (d *Detector) ChanAck(tid vc.TID, ch event.ChanID, cap int) {
	d.noteSync("chan-ack", tid, uint64(uint32(ch)))
	d.th.ChanAck(tid, ch, cap)
}

// WGAdd carries the counter delta only; no happens-before edge.
func (d *Detector) WGAdd(vc.TID, event.WGID, int) {}

// WGDone publishes tid's time to the group; a new epoch starts.
func (d *Detector) WGDone(tid vc.TID, wg event.WGID) {
	d.noteSync("wg-done", tid, uint64(uint32(wg)))
	d.th.WGDone(tid, wg)
	d.bitmap(tid).Reset()
}

// WGWait absorbs every Done publication of the group (acquire only).
func (d *Detector) WGWait(tid vc.TID, wg event.WGID) {
	d.noteSync("wg-wait", tid, uint64(uint32(wg)))
	d.th.WGWait(tid, wg)
}

// Malloc is a no-op: shadow state appears lazily on first access.
func (d *Detector) Malloc(vc.TID, uint64, uint64) {}

// Free discards the shadow state of the freed range in both planes — the
// sequential-deletion path the Figure 4 indexing arrays exist for. A
// sharded detector walks only its owned blocks, so a free of a large
// allocation costs each pipeline worker O(range/Shards) rather than
// O(range).
func (d *Detector) Free(_ vc.TID, addr uint64, size uint64) {
	lo, hi := d.footprint(addr, size)
	if d.cfg.Sharded() {
		d.freeOwnedBlocks(lo, hi)
	} else {
		d.read.DropRange(lo, hi)
		d.write.DropRange(lo, hi)
	}
	d.trackTotal()
}

// freeOwnedBlocks applies DropRange to the intersection of [lo, hi) with
// every owned shadow block.
func (d *Detector) freeOwnedBlocks(lo, hi uint64) {
	if hi <= lo {
		return
	}
	shards := uint64(d.cfg.Shards)
	shard := uint64(d.cfg.Shard)
	b := lo >> shadow.BlockShift
	b += (shard - b%shards + shards) % shards // first owned block ≥ lo's
	for ; b<<shadow.BlockShift < hi; b += shards {
		segLo := b << shadow.BlockShift
		if segLo < lo {
			segLo = lo
		}
		segHi := (b + 1) << shadow.BlockShift
		if segHi > hi {
			segHi = hi
		}
		d.read.DropRange(segLo, segHi)
		d.write.DropRange(segLo, segHi)
	}
}
