// Columnar batch apply with run-length collapse. A structure-of-arrays
// batch (event.Cols) exposes the op/tid/addr/size columns directly, so
// consecutive accesses by one thread to one granule — the dominant shape
// in locality-heavy streams — are visible as a run without decoding
// per-record structs. The detector applies the first access of each run
// in full and folds the repeats into a single accounting bump: the first
// application marks the thread's epoch bitmap over the access footprint,
// so every repeat is guaranteed to take the same-epoch fast path, whose
// only observable effects are the Accesses/SameEpoch counters and the
// provenance ordinal. One shadow lookup per run instead of one per event.
package detector

import "repro/internal/event"

// RepeatAccess accounts n exact repeats of the immediately preceding
// shared access. A repeat with no intervening event of the same thread
// necessarily takes the same-epoch bitmap fast path — the preceding
// application set the footprint's check bits, and only the thread's own
// epoch-starting events clear them — so shadow, clock and race state are
// untouched; the repeats contribute only the accounting the fast path
// performs.
func (d *Detector) RepeatAccess(n uint64) {
	if n == 0 {
		return
	}
	d.stats.Accesses += n
	d.met.Accesses.Add(n)
	d.stats.SameEpoch += n
	d.met.SameEpoch.Add(n)
	if d.prov != nil {
		d.prov.tickN(n)
	}
}

// ApplyCols implements event.BatchSink: it replays a columnar batch in
// record order, collapsing each maximal run of identical (tid, op, addr,
// size) accesses into one full application plus a RepeatAccess of the
// remainder. PCs are deliberately excluded from the run key: a repeat
// never reaches the shadow planes or the provenance ring, so its PC is
// unobservable — collapsing across PC-distinct repeats is still
// verdict-identical to the record-at-a-time path.
func (d *Detector) ApplyCols(c *event.Cols) {
	n := c.Len()
	for i := 0; i < n; {
		op := c.Ops[i]
		if op != event.OpRead && op != event.OpWrite {
			r := c.Rec(i)
			if d.prov != nil && d.prov.extSeq {
				d.prov.seq = r.Seq
			}
			event.ApplyRec(d, &r)
			i++
			continue
		}
		tid, addr, size := c.Tids[i], c.Addrs[i], c.Sizes[i]
		j := i + 1
		for j < n && c.Ops[j] == op && c.Tids[j] == tid && c.Addrs[j] == addr && c.Sizes[j] == size {
			j++
		}
		if d.prov != nil && d.prov.extSeq {
			d.prov.seq = c.Seqs[i]
		}
		if op == event.OpRead {
			d.Read(tid, addr, size, c.PCs[i])
		} else {
			d.Write(tid, addr, size, c.PCs[i])
		}
		if k := uint64(j - i - 1); k > 0 {
			if event.NonShared(addr) {
				// Repeats of a stack access repeat its accounting too.
				d.stats.NonShared += k
				d.met.NonShared.Add(k)
			} else {
				if d.prov != nil && d.prov.extSeq {
					d.prov.seq = c.Seqs[j-1]
				}
				d.RepeatAccess(k)
			}
		}
		i = j
	}
}
