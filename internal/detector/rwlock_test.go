package detector

import (
	"testing"

	"repro/internal/sim"
)

// The rwlock happens-before rules, end to end through the engine:
// write-release → read-acquire orders; read-release → write-acquire
// orders; readers are NOT ordered with each other (but read-read never
// races anyway).
func TestRWLockOrdering(t *testing.T) {
	d := New(Config{Granularity: Dynamic})
	sim.Run(sim.Program{Name: "rwhb", Main: func(m *sim.Thread) {
		rw := m.NewRWLock()
		const x = 0x1000
		// Writer initializes under the write lock.
		m.Lock(rw)
		m.Write(x, 4)
		m.Unlock(rw)
		// Readers read under read locks: ordered after the write.
		var hs []*sim.Thread
		for i := 0; i < 3; i++ {
			hs = append(hs, m.Go(func(w *sim.Thread) {
				for j := 0; j < 10; j++ {
					w.RLock(rw)
					w.Read(x, 4)
					w.RUnlock(rw)
				}
			}))
		}
		for _, h := range hs {
			m.Join(h)
		}
	}}, d, sim.Options{Seed: 3})
	if len(d.Races()) != 0 {
		t.Errorf("rwlock-ordered accesses raced: %v", d.Races())
	}
}

// A writer that follows readers through the lock is ordered after them: no
// read-write race.
func TestRWLockReadersThenWriter(t *testing.T) {
	d := New(Config{Granularity: Dynamic})
	sim.Run(sim.Program{Name: "rw2", Main: func(m *sim.Thread) {
		rw := m.NewRWLock()
		const x = 0x2000
		stage := 0
		r := m.Go(func(w *sim.Thread) {
			w.RLock(rw)
			w.Read(x, 4)
			w.RUnlock(rw)
			stage = 1
		})
		wr := m.Go(func(w *sim.Thread) {
			for stage < 1 {
				w.Yield()
			}
			w.Lock(rw)
			w.Write(x, 4) // ordered after the read via the reader clock
			w.Unlock(rw)
		})
		m.Join(r)
		m.Join(wr)
	}}, d, sim.Options{Seed: 4})
	if len(d.Races()) != 0 {
		t.Errorf("reader-then-writer raced: %v", d.Races())
	}
}

// Misuse is still caught: a write under only a READ lock races with other
// readers' writes (read locks do not order readers with each other).
func TestRWLockWriteUnderReadLockRaces(t *testing.T) {
	d := New(Config{Granularity: Dynamic})
	sim.Run(sim.Program{Name: "rwbug", Main: func(m *sim.Thread) {
		rw := m.NewRWLock()
		const x = 0x3000
		var hs []*sim.Thread
		for i := 0; i < 2; i++ {
			hs = append(hs, m.Go(func(w *sim.Thread) {
				for j := 0; j < 5; j++ {
					w.RLock(rw)
					w.Write(x, 4) // bug: writing under a read lock
					w.RUnlock(rw)
				}
			}))
		}
		for _, h := range hs {
			m.Join(h)
		}
	}}, d, sim.Options{Seed: 5})
	if len(d.Races()) != 1 {
		t.Errorf("write-under-read-lock not caught: %v", d.Races())
	}
}
