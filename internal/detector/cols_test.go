package detector

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/event"
	"repro/internal/vc"
)

// colsStream builds a deterministic racy event stream with heavy run
// structure: threads loop over a few granules between sync events, so the
// columnar apply's run collapse actually fires.
func colsStream(n int, seed int64) *event.Cols {
	rng := rand.New(rand.NewSource(seed))
	c := &event.Cols{}
	seq := uint64(0)
	add := func(r event.Rec) {
		seq++
		r.Seq = seq
		c.Append(r)
	}
	add(event.Rec{Op: event.OpFork, Tid: 0, Aux: 1})
	add(event.Rec{Op: event.OpFork, Tid: 0, Aux: 2})
	for c.Len() < n {
		tid := vc.TID(rng.Intn(3))
		switch rng.Intn(8) {
		case 0:
			add(event.Rec{Op: event.OpAcquire, Tid: tid, Aux: uint64(rng.Intn(2))})
		case 1:
			add(event.Rec{Op: event.OpRelease, Tid: tid, Aux: uint64(rng.Intn(2))})
		default:
			op := event.OpRead + event.Op(rng.Intn(2))
			addr := uint64(0x1000 + 8*rng.Intn(8))
			size := []uint32{1, 4, 8}[rng.Intn(3)]
			// Emit a run: the same access repeated, as tight loops produce.
			for k := rng.Intn(6); k >= 0 && c.Len() < n; k-- {
				add(event.Rec{Op: op, Tid: tid, Addr: addr, Size: size, PC: event.PC(rng.Intn(4))})
			}
		}
	}
	return c
}

// TestApplyColsMatchesRecordApply pins the run-collapsed columnar apply to
// the record-at-a-time one: same races, same Stats (Accesses, SameEpoch,
// NonShared) — the collapse may only change how repeats are counted in,
// never what they count as.
func TestApplyColsMatchesRecordApply(t *testing.T) {
	for _, g := range []Granularity{Byte, Word, Dynamic} {
		for seed := int64(1); seed <= 3; seed++ {
			c := colsStream(4000, seed)
			rec := New(Config{Granularity: g})
			for i := 0; i < c.Len(); i++ {
				r := c.Rec(i)
				event.ApplyRec(rec, &r)
			}
			col := New(Config{Granularity: g})
			col.ApplyCols(c)
			if !reflect.DeepEqual(rec.Races(), col.Races()) {
				t.Fatalf("g=%v seed=%d: race sets differ:\nrecord %v\ncols   %v",
					g, seed, rec.Races(), col.Races())
			}
			rs, cs := rec.Stats(), col.Stats()
			if rs.Accesses != cs.Accesses || rs.SameEpoch != cs.SameEpoch || rs.NonShared != cs.NonShared {
				t.Fatalf("g=%v seed=%d: stats differ: record acc=%d same=%d ns=%d, cols acc=%d same=%d ns=%d",
					g, seed, rs.Accesses, rs.SameEpoch, rs.NonShared,
					cs.Accesses, cs.SameEpoch, cs.NonShared)
			}
		}
	}
}

// TestApplyColsNonSharedRuns checks collapsed non-shared runs land in
// Stats.NonShared, not Accesses/SameEpoch: the collapse must respect the
// detector's first-line stack filter.
func TestApplyColsNonSharedRuns(t *testing.T) {
	c := &event.Cols{}
	for i := 0; i < 5; i++ {
		c.Append(event.Rec{Op: event.OpRead, Tid: 0, Addr: event.StackBase + 0x40, Size: 8, Seq: uint64(i + 1)})
	}
	d := New(Config{Granularity: Dynamic})
	d.ApplyCols(c)
	st := d.Stats()
	if st.NonShared != 5 || st.Accesses != 0 || st.SameEpoch != 0 {
		t.Fatalf("non-shared run miscounted: acc=%d same=%d ns=%d, want 0/0/5",
			st.Accesses, st.SameEpoch, st.NonShared)
	}
}

// TestRepeatAccessCounts pins the repeat bookkeeping: n repeats of an
// applied access count as n same-epoch-filtered accesses.
func TestRepeatAccessCounts(t *testing.T) {
	d := New(Config{Granularity: Dynamic})
	d.Write(0, 0x1000, 8, 1)
	d.RepeatAccess(7)
	st := d.Stats()
	if st.Accesses != 8 || st.SameEpoch != 7 {
		t.Fatalf("acc=%d same=%d after 1 write + 7 repeats, want 8/7", st.Accesses, st.SameEpoch)
	}
}

// TestApplyColsZeroAllocSteadyState pins the columnar batch apply's
// steady-state allocation budget: once the shadow plane for the touched
// granules exists, re-applying an access batch allocates nothing.
func TestApplyColsZeroAllocSteadyState(t *testing.T) {
	c := &event.Cols{}
	for i := 0; i < 256; i++ {
		c.Append(event.Rec{
			Op: event.OpRead, Tid: 0, Addr: uint64(0x1000 + 8*(i%16)), Size: 8, Seq: uint64(i + 1),
		})
	}
	d := New(Config{Granularity: Dynamic})
	d.ApplyCols(c) // warm the shadow plane
	if avg := testing.AllocsPerRun(50, func() {
		d.ApplyCols(c)
	}); avg != 0 {
		t.Fatalf("steady-state ApplyCols allocates %.1f per batch, want 0", avg)
	}
}
