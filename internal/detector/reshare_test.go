package detector

import (
	"testing"

	"repro/internal/vc"
)

// TestAdaptiveResharingRecoalesces: locations that went Private at their
// second epoch but later settle into identical access patterns re-coalesce
// under the adaptive-resharing extension, and only under it.
func TestAdaptiveResharingRecoalesces(t *testing.T) {
	drive := func(cfg Config) int64 {
		d := New(cfg)
		const n = 16
		// Epoch 1: interleaved writers — neighbours get different clocks.
		d.Fork(0, 1)
		for i := 0; i < n; i++ {
			d.Write(vc.TID(i%2), 0x100+uint64(i)*4, 4, 1)
		}
		d.Release(0, 1)
		d.Release(1, 2)
		// Epoch 2: still interleaved: every location decides Private.
		for i := 0; i < n; i++ {
			d.Write(vc.TID(i%2), 0x100+uint64(i)*4, 4, 1)
		}
		d.Release(0, 1)
		d.Release(1, 2)
		// The pattern then changes: thread 0 takes over the whole range
		// and sweeps it every epoch.
		for e := 0; e < 8; e++ {
			d.Acquire(0, 2) // observe thread 1's past: ordered takeover
			for i := 0; i < n; i++ {
				d.Write(0, 0x100+uint64(i)*4, 4, 1)
			}
			d.Release(0, 1)
		}
		return d.Stats().Plane.NodesCur
	}
	fixed := drive(Config{Granularity: Dynamic})
	adaptive := drive(Config{Granularity: Dynamic, ReshareInterval: 2})
	if fixed <= 2 {
		t.Fatalf("without resharing the range should stay fragmented: %d nodes", fixed)
	}
	if adaptive >= fixed {
		t.Errorf("adaptive resharing should re-coalesce: %d vs %d nodes", adaptive, fixed)
	}
}

// TestAdaptiveResharingKeepsPrecision: the extension must not change
// verdicts on racy or race-free traces.
func TestAdaptiveResharingKeepsPrecision(t *testing.T) {
	drive := func(interval uint8) int {
		d := New(Config{Granularity: Dynamic, ReshareInterval: interval})
		d.Fork(0, 1)
		for e := 0; e < 6; e++ {
			for i := 0; i < 8; i++ {
				d.Write(0, 0x100+uint64(i)*4, 4, 1)
			}
			d.Release(0, 1)
		}
		d.Write(1, 0x110, 4, 2) // unordered: one real race
		return len(d.Races())
	}
	if plain, adaptive := drive(0), drive(2); plain != adaptive || plain != 1 {
		t.Errorf("verdicts differ: plain=%d adaptive=%d", plain, adaptive)
	}
}
