package detector

import (
	"testing"

	"repro/internal/event"
	"repro/internal/vc"
)

// feed drives the detector directly (no engine), mimicking the PIN
// callback order.
func dyn() *Detector { return New(Config{Granularity: Dynamic}) }

// TestArraySweepCoalesces reproduces the core Figure 2 behaviour: a data
// structure initialized and re-walked by one thread collapses into a
// handful of shared clock nodes instead of one per location.
func TestArraySweepCoalesces(t *testing.T) {
	d := dyn()
	const n = 32
	// First epoch: initialization sweep.
	for i := 0; i < n; i++ {
		d.Write(0, 0x100+uint64(i)*4, 4, 1)
	}
	st := d.Stats()
	if st.Plane.NodesCur != 1 {
		t.Fatalf("init sweep should share one clock, have %d", st.Plane.NodesCur)
	}
	// Epoch boundary, then the second sweep: final decision.
	d.Release(0, 1)
	for i := 0; i < n; i++ {
		d.Write(0, 0x100+uint64(i)*4, 4, 1)
	}
	st = d.Stats()
	// 32 words = 128 bytes = exactly one indexing block.
	if st.Plane.NodesCur != 1 {
		t.Errorf("second sweep should re-coalesce into one Shared node, have %d", st.Plane.NodesCur)
	}
	if len(d.Races()) != 0 {
		t.Errorf("single-threaded sweep raced: %v", d.Races())
	}
}

// TestSharingNeverCrossesBlocks checks the m-address bound on sharing.
func TestSharingNeverCrossesBlocks(t *testing.T) {
	d := dyn()
	// 64 words span two indexing blocks.
	for i := 0; i < 64; i++ {
		d.Write(0, uint64(i)*4, 4, 1)
	}
	st := d.Stats()
	if st.Plane.NodesCur != 2 {
		t.Errorf("two blocks must give two nodes, have %d", st.Plane.NodesCur)
	}
}

// TestByteGranularityTracksFootprints: at byte granularity, no sharing ever
// happens; each footprint gets its own clock.
func TestByteGranularityTracksFootprints(t *testing.T) {
	d := New(Config{Granularity: Byte})
	for i := 0; i < 16; i++ {
		d.Write(0, 0x100+uint64(i)*4, 4, 1)
	}
	if st := d.Stats(); st.Plane.NodesCur != 16 {
		t.Errorf("byte granularity must keep %d nodes, has %d", 16, st.Plane.NodesCur)
	}
}

// TestWordGranularityMasksByteRaces: two adjacent racy bytes collapse into
// one reported race at word granularity (the paper's x264 observation).
func TestWordGranularityMasksByteRaces(t *testing.T) {
	run := func(g Granularity) int {
		d := New(Config{Granularity: g})
		d.Write(0, 0x100, 1, 1)
		d.Write(0, 0x101, 1, 1)
		d.Write(1, 0x100, 1, 2) // races
		d.Write(1, 0x101, 1, 2) // races
		return len(d.Races())
	}
	if got := run(Byte); got != 2 {
		t.Errorf("byte: %d races, want 2", got)
	}
	if got := run(Word); got != 1 {
		t.Errorf("word: %d races, want 1 (masked)", got)
	}
}

// TestWordGranularityFalseAlarm: byte fields protected by different locks
// in one word produce a false alarm only at word granularity (the paper's
// ffmpeg observation).
func TestWordGranularityFalseAlarm(t *testing.T) {
	run := func(g Granularity) int {
		d := New(Config{Granularity: g})
		// Thread 0 writes byte 0 under lock 1; thread 1 writes byte 1
		// under lock 2. Correct at byte granularity.
		d.Acquire(0, 1)
		d.Write(0, 0x100, 1, 1)
		d.Release(0, 1)
		d.Acquire(1, 2)
		d.Write(1, 0x101, 1, 2)
		d.Release(1, 2)
		return len(d.Races())
	}
	if got := run(Byte); got != 0 {
		t.Errorf("byte granularity invented a race: %d", got)
	}
	if got := run(Dynamic); got != 0 {
		t.Errorf("dynamic granularity invented a race: %d", got)
	}
	if got := run(Word); got != 1 {
		t.Errorf("word granularity should mask the fields together: %d", got)
	}
}

// TestSecondEpochSplitsInitSharing: locations initialized together but then
// owned by different threads split apart without false alarms, provided
// the later accesses are ordered (fork).
func TestSecondEpochSplitsInitSharing(t *testing.T) {
	d := dyn()
	// Main initializes 8 words in one epoch (one Init node).
	for i := 0; i < 8; i++ {
		d.Write(0, 0x100+uint64(i)*4, 4, 1)
	}
	d.Fork(0, 1)
	d.Fork(0, 2)
	// Threads 1 and 2 each own half, writing in their own epochs.
	for i := 0; i < 4; i++ {
		d.Write(1, 0x100+uint64(i)*4, 4, 2)
	}
	for i := 4; i < 8; i++ {
		d.Write(2, 0x100+uint64(i)*4, 4, 3)
	}
	if len(d.Races()) != 0 {
		t.Fatalf("partitioned ownership raced: %v", d.Races())
	}
	// The halves must have separated into (at least) two nodes.
	if st := d.Stats(); st.Plane.NodesCur < 2 {
		t.Errorf("halves did not split: %d nodes", st.Plane.NodesCur)
	}
}

// TestSharedNodeFalseAlarmMechanism verifies the documented imprecision:
// when two locations share a clock, an ordered update to one can make the
// other's next access look racy (the paper's streamcluster false alarms).
func TestSharedNodeFalseAlarmMechanism(t *testing.T) {
	d := dyn()
	// Thread 0 writes words A and B together in two epochs: Shared node.
	write := func() {
		d.Write(0, 0x100, 4, 1)
		d.Write(0, 0x104, 4, 1)
	}
	write()
	d.Release(0, 1)
	write()
	// Publish to thread 1 via lock 2; thread 1 updates only B, ordered.
	d.Release(0, 2)
	d.Acquire(1, 2)
	d.Write(1, 0x104, 4, 2)
	// Thread 0 updates only A — genuinely safe (A was never touched by
	// thread 1), but the shared clock now carries thread 1's epoch.
	d.Write(0, 0x100, 4, 1)
	if len(d.Races()) != 1 {
		t.Errorf("expected the documented false alarm, got %v", d.Races())
	}
	// At byte granularity the same trace is clean.
	b := New(Config{Granularity: Byte})
	b.Write(0, 0x100, 4, 1)
	b.Write(0, 0x104, 4, 1)
	b.Release(0, 1)
	b.Write(0, 0x100, 4, 1)
	b.Write(0, 0x104, 4, 1)
	b.Release(0, 2)
	b.Acquire(1, 2)
	b.Write(1, 0x104, 4, 2)
	b.Write(0, 0x100, 4, 1)
	if len(b.Races()) != 0 {
		t.Errorf("byte granularity must not false-alarm: %v", b.Races())
	}
}

// TestRaceDissolvesSharingAndReportsOncePerLocation.
func TestRaceDissolvesSharing(t *testing.T) {
	d := dyn()
	for i := 0; i < 4; i++ {
		d.Write(0, 0x100+uint64(i)*4, 4, 1)
	}
	d.Release(0, 1)
	for i := 0; i < 4; i++ {
		d.Write(0, 0x100+uint64(i)*4, 4, 1)
	}
	// Unordered write by thread 1 into the shared node: race.
	d.Write(1, 0x104, 4, 2)
	if len(d.Races()) != 1 {
		t.Fatalf("races = %v", d.Races())
	}
	// Re-racing the same location must not re-report.
	d.Write(1, 0x104, 4, 2)
	d.Release(1, 3)
	d.Write(1, 0x104, 4, 2)
	if len(d.Races()) != 1 {
		t.Errorf("re-reported: %v", d.Races())
	}
	// The formerly-sharing neighbours can still report their own first
	// race (here a genuine one, from the same unordered threads).
	d.Release(1, 3) // new epoch so the bitmap doesn't filter
	d.Write(1, 0x108, 4, 2)
	if len(d.Races()) != 2 {
		t.Errorf("neighbour's own race lost: %v", d.Races())
	}
}

// TestSameEpochFiltering checks the bitmap fast path and its statistics.
func TestSameEpochFiltering(t *testing.T) {
	d := dyn()
	d.Write(0, 0x100, 4, 1)
	d.Write(0, 0x100, 4, 1) // same epoch: filtered
	d.Read(0, 0x100, 4, 1)  // read after write: filtered
	st := d.Stats()
	if st.Accesses != 3 || st.SameEpoch != 2 {
		t.Errorf("accesses=%d sameEpoch=%d", st.Accesses, st.SameEpoch)
	}
	d.Release(0, 1) // epoch boundary resets the bitmap
	d.Write(0, 0x100, 4, 1)
	if st := d.Stats(); st.SameEpoch != 2 {
		t.Errorf("write after release filtered: %d", st.SameEpoch)
	}
}

// TestSharedNodeRaisesSameEpochRate: re-entering a Shared node marks its
// whole range, so sweeping it costs one analysis per node per epoch.
func TestSharedNodeRaisesSameEpochRate(t *testing.T) {
	d := dyn()
	sweep := func() {
		for i := 0; i < 16; i++ {
			d.Write(0, 0x100+uint64(i)*4, 4, 1)
		}
	}
	sweep()
	d.Release(0, 1)
	sweep() // second epoch: node becomes Shared
	d.Release(0, 1)
	before := d.Stats().SameEpoch
	sweep() // third epoch: first write marks the node; 15 filtered
	if got := d.Stats().SameEpoch - before; got != 15 {
		t.Errorf("shared-node sweep filtered %d of 15", got)
	}
}

// TestReadSharedBlocksSharing: a location with concurrent readers (vector
// form) must not share its read clock.
func TestReadSharedBlocksSharing(t *testing.T) {
	d := dyn()
	d.Fork(0, 1)
	// Concurrent reads by threads 0 and 1 of word A inflate its read
	// representation.
	d.Read(0, 0x100, 4, 1)
	d.Read(1, 0x100, 4, 2)
	// Another word B next to A, read only by thread 1 in the same epoch.
	d.Read(1, 0x104, 4, 2)
	d.Release(1, 1)
	d.Read(1, 0x104, 4, 2) // second epoch access of B
	d.Release(1, 1)
	d.Read(1, 0x100, 4, 2) // second epoch access of A (read-shared)
	if len(d.Races()) != 0 {
		t.Fatalf("reads raced: %v", d.Races())
	}
	// No assertion on node counts here beyond absence of false alarms;
	// the gate is exercised by the read-shared A not merging with B.
}

// TestFreeDropsShadowBothPlanes.
func TestFreeDropsShadow(t *testing.T) {
	d := dyn()
	d.Write(0, 0x100, 4, 1)
	d.Read(0, 0x100, 4, 1)
	d.Free(0, 0x100, 4)
	if st := d.Stats(); st.Plane.NodesCur != 0 {
		t.Errorf("nodes after free: %d", st.Plane.NodesCur)
	}
	// Reuse by another thread: no stale race.
	d.Write(1, 0x100, 4, 2)
	if len(d.Races()) != 0 {
		t.Errorf("stale shadow raced: %v", d.Races())
	}
}

// TestNoInitStateFloodsInitPatterns: the Table 5 ablation invents races on
// initialize-together-then-partition patterns.
func TestNoInitStateFloodsInitPatterns(t *testing.T) {
	run := func(cfg Config) int {
		d := New(cfg)
		for i := 0; i < 8; i++ {
			d.Write(0, 0x100+uint64(i)*4, 4, 1)
		}
		d.Fork(0, 1)
		d.Fork(0, 2)
		// Interleaved ownership: thread 1 gets even words, thread 2 odd —
		// every pair of neighbours ends up cross-thread.
		for i := 0; i < 8; i += 2 {
			d.Write(1, 0x100+uint64(i)*4, 4, 2)
			d.Write(2, 0x100+uint64(i+1)*4, 4, 3)
		}
		return len(d.Races())
	}
	if got := run(Config{Granularity: Dynamic}); got != 0 {
		t.Errorf("full state machine false-alarmed: %d", got)
	}
	if got := run(Config{Granularity: Dynamic, NoInitState: true}); got == 0 {
		t.Error("no-Init-state variant should flood with false alarms")
	}
}

// TestNoInitSharingCostsMemory: the other Table 5 ablation allocates one
// clock per location during initialization.
func TestNoInitSharingCostsMemory(t *testing.T) {
	sweep := func(cfg Config) int64 {
		d := New(cfg)
		for i := 0; i < 32; i++ {
			d.Write(0, 0x100+uint64(i)*4, 4, 1)
		}
		return d.Stats().Plane.NodesPeak
	}
	with := sweep(Config{Granularity: Dynamic})
	without := sweep(Config{Granularity: Dynamic, NoInitSharing: true})
	if with >= without {
		t.Errorf("init sharing should reduce peak nodes: %d vs %d", with, without)
	}
	if without != 32 {
		t.Errorf("no-sharing variant must keep one node per location: %d", without)
	}
}

// TestWriteGuidedReadsSkipsComparisons: the Section VII extension must not
// change verdicts on ordered programs while doing fewer comparisons.
func TestWriteGuidedReads(t *testing.T) {
	drive := func(cfg Config) (uint64, int) {
		d := New(cfg)
		// Words written and read in per-word private patterns (alternating
		// owners, so neighbours never share): the write plane settles
		// Private, and guided read decisions can skip comparing.
		d.Fork(0, 1)
		newEpochs := func() { d.Release(0, 1); d.Release(1, 2) }
		each := func(f func(tid vc.TID, a uint64)) {
			for i := 0; i < 8; i++ {
				f(vc.TID(i%2), 0x100+uint64(i)*4)
			}
		}
		each(func(tid vc.TID, a uint64) { d.Write(tid, a, 4, 1) })
		newEpochs()
		each(func(tid vc.TID, a uint64) { d.Read(tid, a, 4, 1) })
		newEpochs()
		each(func(tid vc.TID, a uint64) { d.Write(tid, a, 4, 1) })
		newEpochs()
		// Second-epoch read accesses: the guided decision applies here.
		each(func(tid vc.TID, a uint64) { d.Read(tid, a, 4, 1) })
		return d.Stats().SharingComparisons, len(d.Races())
	}
	plain, racesPlain := drive(Config{Granularity: Dynamic})
	guided, racesGuided := drive(Config{Granularity: Dynamic, WriteGuidedReads: true})
	if racesPlain != racesGuided {
		t.Errorf("verdicts differ: %d vs %d", racesPlain, racesGuided)
	}
	if guided >= plain {
		t.Errorf("guided reads should compare less: %d vs %d", guided, plain)
	}
}

// TestStatsMemoryComponents: all three Table 2 components move.
func TestStatsMemoryComponents(t *testing.T) {
	d := dyn()
	for i := 0; i < 64; i++ {
		d.Write(0, 0x100+uint64(i)*4, 4, 1)
		d.Read(0, 0x100+uint64(i)*4, 4, 1)
	}
	st := d.Stats()
	if st.HashPeakBytes <= 0 || st.VCPeakBytes <= 0 || st.BitmapPeakBytes <= 0 {
		t.Errorf("components: hash=%d vc=%d bitmap=%d",
			st.HashPeakBytes, st.VCPeakBytes, st.BitmapPeakBytes)
	}
	if st.TotalPeakBytes < st.Plane.VCBytesPeak {
		t.Error("total must cover at least the clock storage")
	}
}

// TestRacedLocationDedupAcrossPlanes: a variable with both a read-side and
// a write-side race counts once (first race per memory location).
func TestRacedLocationDedupAcrossPlanes(t *testing.T) {
	d := dyn()
	d.Fork(0, 1)
	d.Read(0, 0x100, 4, 1)  // thread 0 reads
	d.Write(1, 0x100, 4, 2) // read-write race (write plane reports)
	d.Read(0, 0x100, 4, 1)  // write-read race (read plane would report)
	if len(d.Races()) != 1 {
		t.Errorf("location reported %d times: %v", len(d.Races()), d.Races())
	}
}

// TestOverlappingFootprints: staggered accesses split nodes precisely.
func TestOverlappingFootprints(t *testing.T) {
	d := New(Config{Granularity: Byte})
	d.Write(0, 0x100, 8, 1) // one 8-byte footprint
	d.Fork(0, 1)
	d.Write(1, 0x102, 2, 2) // ordered (fork) partial overlap
	d.Release(1, 1)
	// Thread 0 writes the full word again — must race only via the part
	// thread 1 touched… but thread 0 never synchronized with thread 1 at
	// all, so the [0x102,0x104) bytes race.
	d.Write(0, 0x100, 8, 1)
	if len(d.Races()) != 1 {
		t.Fatalf("races = %v", d.Races())
	}
	if r := d.Races()[0]; r.Addr != 0x102 || r.Size != 2 {
		t.Errorf("race should pinpoint the overlap: %v", r)
	}
}

var _ = event.ModuleApp
