package detector

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dyngran"
	"repro/internal/vc"
)

// stateOf reads the write-plane state machine state of addr ("" if no node).
func stateOf(d *Detector, addr uint64) string {
	n := d.write.Tab.Get(addr)
	if n == nil {
		return "none"
	}
	if n.State == dyngran.Init {
		if n.InitShared {
			return "1st-Epoch-Shared"
		}
		return "1st-Epoch-Private"
	}
	return n.State.String()
}

// figure2Allowed is the transition relation of the Figure 2 state machine,
// augmented with "none" for unallocated/freed shadow state. Both Init
// sub-states may flip between each other while the first epoch lasts
// (1st-Epoch-Private → 1st-Epoch-Shared when a new neighbour is initiated,
// and a shared Init node can be split back apart).
var figure2Allowed = map[string]map[string]bool{
	"none": {"none": true, "1st-Epoch-Private": true, "1st-Epoch-Shared": true, "Race": true},
	"1st-Epoch-Private": {
		"1st-Epoch-Private": true, "1st-Epoch-Shared": true,
		"Shared": true, "Private": true, "Race": true, "none": true,
	},
	"1st-Epoch-Shared": {
		"1st-Epoch-Shared": true, "1st-Epoch-Private": true,
		"Shared": true, "Private": true, "Race": true, "none": true,
	},
	"Shared":  {"Shared": true, "Race": true, "none": true},
	"Private": {"Private": true, "Shared": true, "Race": true, "none": true},
	"Race":    {"Race": true, "none": true},
}

// TestFigure2TransitionModel drives random instrumentation sequences and
// asserts that a tracked location's observable state only ever moves along
// Figure 2's edges.
func TestFigure2TransitionModel(t *testing.T) {
	const tracked = uint64(0x120)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(Config{Granularity: Dynamic})
		d.Fork(0, 1)
		prev := stateOf(d, tracked)
		for op := 0; op < 400; op++ {
			tid := vc.TID(rng.Intn(2))
			addr := 0x100 + uint64(rng.Intn(16))*4
			switch rng.Intn(10) {
			case 0:
				d.Release(tid, 1)
			case 1:
				d.Free(tid, 0x100, 64)
			case 2:
				d.Read(tid, addr, 4, 1)
			default:
				d.Write(tid, addr, 4, 1)
			}
			cur := stateOf(d, tracked)
			if !figure2Allowed[prev][cur] {
				t.Logf("seed %d op %d: illegal transition %s → %s", seed, op, prev, cur)
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFigure2HappyPath walks the canonical lifecycle explicitly.
func TestFigure2HappyPath(t *testing.T) {
	d := New(Config{Granularity: Dynamic})
	const a, b = uint64(0x100), uint64(0x104)

	d.Write(0, a, 4, 1)
	if got := stateOf(d, a); got != "1st-Epoch-Private" {
		t.Fatalf("after first access: %s", got)
	}
	d.Write(0, b, 4, 1) // neighbour initiated with the same clock
	if got := stateOf(d, a); got != "1st-Epoch-Shared" {
		t.Fatalf("after neighbour init: %s", got)
	}
	d.Release(0, 1)
	d.Write(0, a, 4, 1) // second epoch access: split, no eligible neighbour
	if got := stateOf(d, a); got != "Private" {
		t.Fatalf("after second epoch: %s", got)
	}
	d.Write(0, b, 4, 1) // b's second epoch: merges with a → both Shared
	if got := stateOf(d, a); got != "Shared" {
		t.Fatalf("after neighbour's decision: %s", got)
	}
	d.Write(1, a, 4, 2) // unordered thread: race dissolves the sharing
	if got := stateOf(d, a); got != "Race" {
		t.Fatalf("after race: %s", got)
	}
	if got := stateOf(d, b); got != "Race" {
		t.Fatalf("formerly-sharing neighbour after race: %s", got)
	}
	d.Free(0, a, 8)
	if got := stateOf(d, a); got != "none" {
		t.Fatalf("after free: %s", got)
	}
}
