// Tests for the race-provenance flight recorder: content of the records,
// the disabled-is-free allocation guard, and the overhead benchmark CI
// gates on.
package detector

import (
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/vc"
)

// raceyDetector reports one unsynchronized write-write race between two
// threads and returns the detector.
func raceyDetector(cfg Config) *Detector {
	d := New(cfg)
	d.Fork(0, 1)
	d.Acquire(0, 7)
	d.Release(0, 7)
	d.Write(0, 0x1000, 4, 0x11)
	d.Write(1, 0x1000, 4, 0x22) // no edge from T0's write: races
	return d
}

// TestProvenanceRecordContent pins what one record says: both accesses,
// the failed comparison (with the verdict inequality holding), a Figure 2
// state path, and the sync edges the shard saw.
func TestProvenanceRecordContent(t *testing.T) {
	d := raceyDetector(Config{Granularity: Dynamic, Provenance: true})
	races, provs := d.Races(), d.Provs()
	if len(races) != 1 || len(provs) != 1 {
		t.Fatalf("got %d races, %d provenance records, want 1 each", len(races), len(provs))
	}
	r, p := races[0], provs[0]
	if p.Kind != r.Kind.String() {
		t.Errorf("Kind %q vs race kind %q", p.Kind, r.Kind)
	}
	if p.Current.Tid != 1 || p.Current.PC != 0x22 || p.Current.Op != "write" {
		t.Errorf("current access: %+v", p.Current)
	}
	if p.Previous.Tid != 0 || p.Previous.PC != 0x11 {
		t.Errorf("previous access: %+v", p.Previous)
	}
	if p.Previous.Seq == 0 {
		t.Error("previous access not recovered from the flight-recorder ring")
	}
	if p.Comparison.Plane != "write" || p.Comparison.PrevTid != 0 ||
		p.Comparison.PrevClock <= p.Comparison.Observed {
		t.Errorf("comparison: %+v", p.Comparison)
	}
	if len(p.Transitions) == 0 {
		t.Error("no state transitions recorded")
	}
	edges := make([]string, len(p.SyncEdges))
	for i, e := range p.SyncEdges {
		edges[i] = e.Op
	}
	joined := strings.Join(edges, " ")
	if !strings.Contains(joined, "fork") || !strings.Contains(joined, "release") {
		t.Errorf("sync edges missing the fork/release history: %v", joined)
	}
	if s := p.String(); !strings.Contains(s, "failed comparison") {
		t.Errorf("String() lacks the comparison line:\n%s", s)
	}
}

// TestProvenanceVerdictNeutral checks the recorder changes no verdict: a
// synchronization-heavy two-thread run reports the identical race slice
// with and without provenance.
func TestProvenanceVerdictNeutral(t *testing.T) {
	run := func(prov bool) []Race {
		d := New(Config{Granularity: Dynamic, Provenance: prov})
		d.Fork(0, 1)
		for i := uint64(0); i < 64; i++ {
			d.Acquire(0, 1)
			d.Write(0, 0x2000+i*4, 4, 1)
			d.Release(0, 1)
			d.Acquire(1, 1)
			d.Read(1, 0x2000+i*4, 4, 2)
			d.Release(1, 1)
			d.Write(1, 0x3000+i, 1, 3) // unsynchronized with T0's later read
			d.Read(0, 0x3000+i, 1, 4)
		}
		return d.Races()
	}
	base, withProv := run(false), run(true)
	if len(base) != len(withProv) {
		t.Fatalf("race counts differ: %d vs %d", len(base), len(withProv))
	}
	for i := range base {
		if base[i] != withProv[i] {
			t.Errorf("race %d differs: %+v vs %+v", i, base[i], withProv[i])
		}
	}
	if len(withProv) == 0 {
		t.Fatal("workload produced no races")
	}
}

// TestProvenanceDisabledZeroAlloc pins the disabled-is-free contract: with
// Config.Provenance off (the default), the warm hot path — including the
// nil-recorder branches this feature added — allocates nothing.
func TestProvenanceDisabledZeroAlloc(t *testing.T) {
	for _, g := range []Granularity{Byte, Word, Dynamic} {
		g := g
		t.Run(g.String(), func(t *testing.T) {
			d := New(Config{Granularity: g})
			d.Fork(0, 1)
			const base, n = 0x1000, 256
			cycle := func() {
				for _, tid := range []vc.TID{0, 1} {
					d.Acquire(tid, event.LockID(3))
					for a := uint64(0); a < n; a += 8 {
						d.Write(tid, base+a, 8, 1)
						d.Read(tid, base+a, 8, 2)
					}
					d.Release(tid, event.LockID(3))
				}
			}
			cycle() // warm shadow state, clocks, bitmaps
			if got := testing.AllocsPerRun(50, cycle); got != 0 {
				t.Fatalf("provenance-disabled steady state: %v allocs/run, want 0", got)
			}
		})
	}
}

// BenchmarkProvenanceOverhead measures the flight recorder's hot-path
// cost. CI gates on the disabled lane allocating zero bytes per op — the
// recorder must stay a single predictable branch when off.
func BenchmarkProvenanceOverhead(b *testing.B) {
	for _, mode := range []struct {
		name string
		prov bool
	}{{"disabled", false}, {"enabled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			d := New(Config{Granularity: Dynamic, Provenance: mode.prov})
			d.Fork(0, 1)
			const words = 256
			for w := uint64(0); w < words; w++ {
				d.Write(0, 0x1000+w*4, 4, 1) // warm
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := uint64(i % words)
				d.Write(0, 0x1000+w*4, 4, 1)
				if w == words-1 {
					d.Release(0, 1)
				}
			}
		})
	}
}
