// The feedback controller: turns the transport back-pressure signals the
// adaptive batch policy already measures (worker-queue / outbox occupancy
// and ack RTT) into a global sampling rate that converges on the
// user-set overhead budget (race.Options.Budget).
package sampling

import (
	"sync"
	"time"
)

// Controller trades the sampler's global rate against observed transport
// back-pressure. It implements event.BackpressureObserver, so the local
// pipeline, the remote client and every cluster member can feed it the
// same signals they feed event.BatchPolicy:
//
//   - Pressure (a worker queue at or past half capacity, or an ack RTT
//     blown past 4× the observed floor) halves the rate — multiplicative
//     decrease, clamped at the sampler's floor.
//   - A clear signal (an empty queue, or an RTT back within 2× the floor)
//     moves the rate a fixed fraction of the remaining distance back
//     toward the budget — a damped exponential approach that can never
//     overshoot, so rate changes are monotone within a same-signal
//     window (the no-oscillation bound the tests pin).
//
// With no signals at all (a serial in-process run) the rate simply stays
// at the budget, which keeps the bench lanes deterministic.
//
// A single Controller may be shared by several observers (the cluster
// fan-out creates one client per member); all state is mutex-guarded.
type Controller struct {
	mu     sync.Mutex
	det    *Detector
	budget float64 // target rate in ‰
	floor  float64
	rate   float64
	gain   float64 // fraction of the gap recovered per clear signal
	minRTT time.Duration
}

// NewController returns a controller converging on budget (a fraction in
// (0,1]). Bind attaches the sampler it steers; until then observations
// only move the internal rate.
func NewController(budget float64) *Controller {
	if budget < 0 {
		budget = 0
	}
	if budget > 1 {
		budget = 1
	}
	c := &Controller{
		budget: budget * 1000,
		floor:  1,
		rate:   budget * 1000,
		gain:   0.25,
	}
	return c
}

// Bind attaches the sampler the controller steers and pushes the current
// rate into it. The pipeline/client constructors need the observer before
// the sampler can wrap them, so binding is a second step.
func (c *Controller) Bind(d *Detector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.det = d
	if d != nil {
		if f := float64(d.opt.FloorPermille); f > c.floor {
			c.floor = f
		}
		if c.rate < c.floor {
			c.rate = c.floor
		}
		d.SetRatePermille(uint32(c.rate + 0.5))
	}
}

// RatePermille returns the controller's current rate in ‰.
func (c *Controller) RatePermille() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return uint32(c.rate + 0.5)
}

// ObserveQueue consumes a queue-occupancy signal (worker-queue depth for
// the local pipeline, outbox depth for the remote client): at or past
// half capacity is pressure, empty is clear.
func (c *Controller) ObserveQueue(queued, capacity int) {
	if capacity <= 0 {
		return
	}
	switch {
	case 2*queued >= capacity:
		c.pressure()
	case queued == 0:
		c.clear()
	}
}

// ObserveRTT consumes one ack round-trip: the minimum observed RTT is the
// floor, 4× over it is pressure, back within 2× is clear (the same
// thresholds event.BatchPolicy uses for batch sizing).
func (c *Controller) ObserveRTT(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	c.mu.Lock()
	if c.minRTT == 0 || rtt < c.minRTT {
		c.minRTT = rtt
	}
	min := c.minRTT
	c.mu.Unlock()
	switch {
	case rtt > 4*min:
		c.pressure()
	case rtt <= 2*min:
		c.clear()
	}
}

// pressure is the multiplicative decrease: halve the rate, never below
// the floor.
func (c *Controller) pressure() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rate /= 2
	if c.rate < c.floor {
		c.rate = c.floor
	}
	c.apply()
}

// clear recovers a fixed fraction of the distance back to the budget —
// strictly monotone toward it, asymptotically converging, never past it.
func (c *Controller) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rate += (c.budget - c.rate) * c.gain
	if c.rate < c.floor {
		c.rate = c.floor
	}
	c.apply()
}

// apply pushes the rate into the bound sampler. Caller holds c.mu.
func (c *Controller) apply() {
	if c.det != nil {
		c.det.SetRatePermille(uint32(c.rate + 0.5))
	}
}
