package sampling

import (
	"testing"
	"time"

	"repro/internal/event"
)

// Compile-time check: the controller plugs into every transport that
// feeds back-pressure signals.
var _ event.BackpressureObserver = (*Controller)(nil)

// Step response: sustained pressure collapses the rate toward the floor;
// sustained clear signals recover it back to the budget (within rounding)
// — the controller converges in both directions.
func TestControllerStepResponse(t *testing.T) {
	s := New(event.Nop{}, Options{RatePermille: 50})
	c := NewController(0.05)
	c.Bind(s)
	if got := s.RatePermille(); got != 50 {
		t.Fatalf("bound rate = %d‰, want 50‰", got)
	}

	// Step 1: queues blow past the watermark. Multiplicative decrease
	// must reach the floor in a handful of observations.
	for i := 0; i < 10; i++ {
		c.ObserveQueue(90, 100)
	}
	if got := s.RatePermille(); got != 1 {
		t.Fatalf("rate after sustained pressure = %d‰, want floor 1‰", got)
	}

	// Step 2: queues drain. The damped approach must recover to within
	// 5% of the budget within a bounded number of clear signals
	// (gain 0.25 → gap shrinks 0.75× per signal; 20 is generous).
	for i := 0; i < 20; i++ {
		c.ObserveQueue(0, 100)
	}
	if got := s.RatePermille(); got < 47 || got > 50 {
		t.Fatalf("rate after recovery = %d‰, want ≈50‰", got)
	}
}

// RTT signals behave like occupancy: a blown RTT is pressure, an RTT back
// near the floor is clear, and the floor is learned from observations.
func TestControllerRTTSignals(t *testing.T) {
	s := New(event.Nop{}, Options{RatePermille: 200})
	c := NewController(0.2)
	c.Bind(s)

	c.ObserveRTT(time.Millisecond) // learn the floor (also a clear signal)
	for i := 0; i < 8; i++ {
		c.ObserveRTT(10 * time.Millisecond) // 10× the floor: pressure
	}
	low := s.RatePermille()
	if low >= 200 {
		t.Fatalf("rate did not decrease under RTT pressure: %d‰", low)
	}
	for i := 0; i < 30; i++ {
		c.ObserveRTT(time.Millisecond) // back at the floor: clear
	}
	if got := s.RatePermille(); got < 190 || got > 200 {
		t.Fatalf("rate after RTT recovery = %d‰, want ≈200‰", got)
	}
	// In-between RTTs (2×–4× the floor) are neither pressure nor clear.
	before := s.RatePermille()
	c.ObserveRTT(3 * time.Millisecond)
	if got := s.RatePermille(); got != before {
		t.Fatalf("neutral RTT moved the rate: %d‰ → %d‰", before, got)
	}
}

// No oscillation: within a window of same-direction signals the rate
// sequence is monotone, and each recovery step is no larger than the
// previous one (damped). The controller never overshoots the budget.
func TestControllerMonotoneDamped(t *testing.T) {
	s := New(event.Nop{}, Options{RatePermille: 100})
	c := NewController(0.1)
	c.Bind(s)

	// Drive to the floor, recording the pressure trajectory.
	var down []uint32
	for i := 0; i < 12; i++ {
		c.ObserveQueue(100, 100)
		down = append(down, c.RatePermille())
	}
	for i := 1; i < len(down); i++ {
		if down[i] > down[i-1] {
			t.Fatalf("pressure window not monotone: %v", down)
		}
	}

	// Recover, recording the clear trajectory.
	var up []uint32
	for i := 0; i < 40; i++ {
		c.ObserveQueue(0, 100)
		up = append(up, c.RatePermille())
	}
	prevStep := uint32(1 << 30)
	for i := 1; i < len(up); i++ {
		if up[i] < up[i-1] {
			t.Fatalf("recovery window not monotone: %v", up)
		}
		// Damped: each step covers a fixed fraction of a shrinking gap, so
		// steps never grow (±1‰ slack for integer rounding of the rate).
		step := up[i] - up[i-1]
		if step > prevStep+1 {
			t.Fatalf("recovery steps not damped at %d: %v", i, up)
		}
		if step > 0 {
			prevStep = step
		}
		if up[i] > 100 {
			t.Fatalf("recovery overshot the budget: %v", up)
		}
	}
}

// Unbound observations only move the internal rate; Bind pushes it into
// the sampler (the constructors need the observer before the sampler
// exists, so this ordering is the production one).
func TestControllerBindAfterSignals(t *testing.T) {
	c := NewController(0.5)
	for i := 0; i < 4; i++ {
		c.ObserveQueue(100, 100)
	}
	s := New(event.Nop{}, Options{RatePermille: 500})
	c.Bind(s)
	if got := s.RatePermille(); got != c.RatePermille() {
		t.Fatalf("Bind did not push the rate: sampler %d‰, controller %d‰",
			got, c.RatePermille())
	}
	if got := s.RatePermille(); got >= 500 {
		t.Fatalf("pre-bind pressure lost: %d‰", got)
	}
}

// A controller for a 100% budget would defeat the pass-through lane;
// the race layer never attaches one, but the clamp keeps even a misused
// controller inside [floor, budget].
func TestControllerClamps(t *testing.T) {
	c := NewController(2.0) // clamped to 1.0
	s := New(event.Nop{}, Options{})
	c.Bind(s)
	for i := 0; i < 50; i++ {
		c.ObserveQueue(0, 100)
	}
	if got := c.RatePermille(); got > 1000 {
		t.Fatalf("rate exceeded 1000‰: %d", got)
	}
	for i := 0; i < 50; i++ {
		c.ObserveQueue(100, 100)
	}
	if got := c.RatePermille(); got < 1 {
		t.Fatalf("rate fell below the floor: %d", got)
	}
}
