package sampling

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/sim"
	"repro/workloads"
)

func TestColdRegionsFullyAnalyzed(t *testing.T) {
	c := &event.Counter{}
	s := New(c, Options{BurstLength: 10})
	for i := 0; i < 10; i++ {
		s.Read(0, uint64(i), 4, 5)
	}
	if c.Reads != 10 {
		t.Errorf("first burst must be fully forwarded: %d", c.Reads)
	}
}

func TestHotRegionsDecay(t *testing.T) {
	c := &event.Counter{}
	s := New(c, Options{BurstLength: 4, Decay: 2})
	for i := 0; i < 100000; i++ {
		s.Write(0, uint64(i), 4, 9)
	}
	if s.Rate() > 0.2 {
		t.Errorf("hot region rate too high: %.3f", s.Rate())
	}
	if s.Rate() < 0.001 {
		t.Errorf("rate fell below the floor: %.5f", s.Rate())
	}
	if c.Writes != s.Forwarded {
		t.Errorf("forwarded mismatch: %d vs %d", c.Writes, s.Forwarded)
	}
}

func TestPerRegionIndependence(t *testing.T) {
	c := &event.Counter{}
	s := New(c, Options{BurstLength: 8})
	// Heat up region 1.
	for i := 0; i < 10000; i++ {
		s.Write(0, uint64(i), 4, 1)
	}
	before := c.Writes
	// A cold region still gets its full first burst.
	for i := 0; i < 8; i++ {
		s.Write(0, uint64(i), 4, 2)
	}
	if c.Writes-before != 8 {
		t.Errorf("cold region throttled by a hot one: %d", c.Writes-before)
	}
}

func TestSyncAlwaysForwarded(t *testing.T) {
	c := &event.Counter{}
	s := New(c, Options{})
	for i := 0; i < 100; i++ {
		s.Acquire(0, 1)
		s.Release(0, 1)
	}
	if c.Acquires != 100 || c.Releases != 100 {
		t.Error("synchronization must never be sampled away")
	}
}

// Sampling must never invent races: wrapping FastTrack can only shrink the
// report set (the synchronization skeleton stays exact).
func TestSamplingNeverInventsRaces(t *testing.T) {
	for _, name := range []string{"ffmpeg", "hmmsearch", "pbzip2"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		full := detector.New(detector.Config{Granularity: detector.Byte})
		sim.Run(spec.Program(), full, sim.Options{Seed: 42})
		fullAddrs := map[uint64]bool{}
		for _, r := range full.Races() {
			fullAddrs[r.Addr] = true
		}

		under := detector.New(detector.Config{Granularity: detector.Byte})
		sampled := New(under, Options{BurstLength: 8, Decay: 4})
		sim.Run(spec.Program(), sampled, sim.Options{Seed: 42})
		for _, r := range under.Races() {
			if !fullAddrs[r.Addr] {
				t.Errorf("%s: sampling invented a race at %#x", name, r.Addr)
			}
		}
		if sampled.Rate() >= 1 && sampled.Skipped == 0 && name != "hmmsearch" {
			t.Errorf("%s: sampler never throttled (rate %.3f)", name, sampled.Rate())
		}
	}
}

// The cold-region hypothesis in action: a race in rarely executed code is
// still caught at a low overall sampling rate.
func TestColdRaceStillCaught(t *testing.T) {
	prog := sim.Program{Name: "coldrace", Main: func(m *sim.Thread) {
		a := m.Go(func(w *sim.Thread) {
			w.At(1) // hot loop
			for i := 0; i < 50000; i++ {
				w.Write(0x1000+uint64(i%64)*4, 4)
			}
			w.At(2) // cold racy site
			w.Write(0x9000, 4)
		})
		b := m.Go(func(w *sim.Thread) {
			w.At(1)
			for i := 0; i < 50000; i++ {
				w.Write(0x2000+uint64(i%64)*4, 4)
			}
			w.At(3) // cold racy site
			w.Write(0x9000, 4)
		})
		m.Join(a)
		m.Join(b)
	}}
	under := detector.New(detector.Config{Granularity: detector.Byte})
	s := New(under, Options{BurstLength: 4, Decay: 4})
	sim.Run(prog, s, sim.Options{Seed: 3})
	if s.Rate() > 0.05 {
		t.Errorf("sampler barely sampled: rate %.3f", s.Rate())
	}
	if len(under.Races()) != 1 {
		t.Errorf("cold race missed at %.3f%% sampling: %v", 100*s.Rate(), under.Races())
	}
}
