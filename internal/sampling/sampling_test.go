package sampling

import (
	"sync"
	"testing"

	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/sim"
	"repro/internal/vc"
	"repro/workloads"
)

func TestColdRegionsFullyAnalyzed(t *testing.T) {
	c := &event.Counter{}
	s := New(c, Options{BurstLength: 10})
	for i := 0; i < 10; i++ {
		s.Read(0, uint64(i), 4, 5)
	}
	if c.Reads != 10 {
		t.Errorf("first burst must be fully forwarded: %d", c.Reads)
	}
}

func TestHotRegionsDecay(t *testing.T) {
	c := &event.Counter{}
	s := New(c, Options{BurstLength: 4, Decay: 2})
	for i := 0; i < 100000; i++ {
		s.Write(0, uint64(i%256), 4, 9) // bounded range: regions go hot
	}
	if s.Rate() > 0.2 {
		t.Errorf("hot region rate too high: %.3f", s.Rate())
	}
	if s.Rate() < 0.001 {
		t.Errorf("rate fell below the floor: %.5f", s.Rate())
	}
	if f, _ := s.Counts(); c.Writes != f {
		t.Errorf("forwarded mismatch: %d vs %d", c.Writes, f)
	}
}

func TestPerRegionIndependence(t *testing.T) {
	c := &event.Counter{}
	s := New(c, Options{BurstLength: 8})
	// Heat up region 1.
	for i := 0; i < 10000; i++ {
		s.Write(0, uint64(i), 4, 1)
	}
	before := c.Writes
	// A cold region still gets its full first burst.
	for i := 0; i < 8; i++ {
		s.Write(0, uint64(i), 4, 2)
	}
	if c.Writes-before != 8 {
		t.Errorf("cold region throttled by a hot one: %d", c.Writes-before)
	}
}

func TestSyncAlwaysForwarded(t *testing.T) {
	c := &event.Counter{}
	s := New(c, Options{})
	for i := 0; i < 100; i++ {
		s.Acquire(0, 1)
		s.Release(0, 1)
	}
	if c.Acquires != 100 || c.Releases != 100 {
		t.Error("synchronization must never be sampled away")
	}
}

// Sampling must never invent races: wrapping FastTrack can only shrink the
// report set (the synchronization skeleton stays exact).
func TestSamplingNeverInventsRaces(t *testing.T) {
	for _, name := range []string{"ffmpeg", "hmmsearch", "pbzip2"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		full := detector.New(detector.Config{Granularity: detector.Byte})
		sim.Run(spec.Program(), full, sim.Options{Seed: 42})
		fullAddrs := map[uint64]bool{}
		for _, r := range full.Races() {
			fullAddrs[r.Addr] = true
		}

		under := detector.New(detector.Config{Granularity: detector.Byte})
		sampled := New(under, Options{BurstLength: 8, Decay: 4})
		sim.Run(spec.Program(), sampled, sim.Options{Seed: 42})
		for _, r := range under.Races() {
			if !fullAddrs[r.Addr] {
				t.Errorf("%s: sampling invented a race at %#x", name, r.Addr)
			}
		}
		_, skipped := sampled.Counts()
		if sampled.Rate() >= 1 && skipped == 0 && name != "hmmsearch" {
			t.Errorf("%s: sampler never throttled (rate %.3f)", name, sampled.Rate())
		}
	}
}

// The cold-region hypothesis in action: a race in rarely executed code is
// still caught at a low overall sampling rate.
func TestColdRaceStillCaught(t *testing.T) {
	prog := sim.Program{Name: "coldrace", Main: func(m *sim.Thread) {
		a := m.Go(func(w *sim.Thread) {
			w.At(1) // hot loop
			for i := 0; i < 50000; i++ {
				w.Write(0x1000+uint64(i%64)*4, 4)
			}
			w.At(2) // cold racy site
			w.Write(0x9000, 4)
		})
		b := m.Go(func(w *sim.Thread) {
			w.At(1)
			for i := 0; i < 50000; i++ {
				w.Write(0x2000+uint64(i%64)*4, 4)
			}
			w.At(3) // cold racy site
			w.Write(0x9000, 4)
		})
		m.Join(a)
		m.Join(b)
	}}
	under := detector.New(detector.Config{Granularity: detector.Byte})
	s := New(under, Options{BurstLength: 4, Decay: 4})
	sim.Run(prog, s, sim.Options{Seed: 3})
	if s.Rate() > 0.05 {
		t.Errorf("sampler barely sampled: rate %.3f", s.Rate())
	}
	if len(under.Races()) != 1 {
		t.Errorf("cold race missed at %.3f%% sampling: %v", 100*s.Rate(), under.Races())
	}
}

// A 100% budget must be a pure pass-through: every access forwarded and
// no sampling state (or counters) touched, so wrapping is byte-identical
// to not wrapping.
func TestFullBudgetPassThrough(t *testing.T) {
	c := &event.Counter{}
	s := New(c, Options{RatePermille: 1000})
	for i := 0; i < 5000; i++ {
		s.Write(0, uint64(i), 4, event.PC(i%7))
	}
	if c.Writes != 5000 {
		t.Fatalf("pass-through dropped accesses: %d/5000", c.Writes)
	}
	f, sk := s.Counts()
	if f != 0 || sk != 0 {
		t.Errorf("pass-through touched counters: forwarded=%d skipped=%d", f, sk)
	}
	if s.Rate() != 1 {
		t.Errorf("pass-through rate = %v, want 1", s.Rate())
	}
}

// A global budget caps the run-wide forwarded fraction: hot regions
// converge on the budget and the credit check holds the overall rate at
// it (untouched cold regions' first bursts are the only excess).
func TestGlobalBudgetCapsRate(t *testing.T) {
	c := &event.Counter{}
	s := New(c, Options{BurstLength: 10, RatePermille: 50}) // 5% budget
	for i := 0; i < 200000; i++ {
		// 32 sites over a bounded address range: every (site, block)
		// region is hot, so the credit check governs the whole run.
		s.Write(0, uint64(i%1024), 4, event.PC(i%32))
	}
	if r := s.Rate(); r > 0.055 {
		t.Errorf("budgeted rate %.4f exceeds 5%% budget (+ cold-burst slack)", r)
	} else if r < 0.005 {
		t.Errorf("budgeted rate %.4f collapsed far below budget", r)
	}
}

// SetRatePermille is the controller's live knob: dropping the rate
// mid-run throttles; restoring 1000 returns to pass-through.
func TestSetRateLiveTransition(t *testing.T) {
	c := &event.Counter{}
	s := New(c, Options{RatePermille: 1000})
	for i := 0; i < 1000; i++ {
		s.Write(0, uint64(i), 4, 1)
	}
	if c.Writes != 1000 {
		t.Fatalf("full-rate lane dropped accesses: %d", c.Writes)
	}
	s.SetRatePermille(10)
	before := c.Writes
	for i := 0; i < 100000; i++ {
		s.Write(0, uint64(i%256), 4, 1) // bounded range: regions go hot
	}
	if got := c.Writes - before; got > 5000 {
		t.Errorf("throttled lane forwarded %d/100000 (want ≲1%%+burst)", got)
	}
}

// The skip path must not allocate: once a region is hot, skipping its
// accesses is a table lookup plus a CAS.
func TestSkipPathZeroAlloc(t *testing.T) {
	s := New(event.Nop{}, Options{BurstLength: 4, RatePermille: 1})
	for i := 0; i < 10000; i++ {
		s.Write(0, uint64(i), 4, 7) // heat the region well past its bursts
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.Write(0, 0x100, 4, 7)
	})
	if allocs != 0 {
		t.Errorf("skip path allocates %.1f per op, want 0", allocs)
	}
}

// The sampler must be shard-safe: concurrent producers hammering
// overlapping and distinct sites (forcing table growth) while the rate
// changes underneath them. Run under -race in CI.
func TestConcurrentProducers(t *testing.T) {
	c := &event.Counter{} // not written: Nop under test avoids Counter's own races
	_ = c
	s := New(event.Nop{}, Options{BurstLength: 8, RatePermille: 100})
	const producers = 8
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				// Shared hot sites plus per-producer cold sites: the cold
				// tail forces the region table through several growths.
				pc := event.PC(i % 16)
				if i%97 == 0 {
					pc = event.PC(1000 + p*20000 + i)
				}
				s.Write(vc.TID(p), uint64(i), 4, pc)
				s.Read(vc.TID(p), uint64(i), 4, pc)
				if i%1000 == 0 {
					s.Acquire(vc.TID(p), 1)
					s.Release(vc.TID(p), 1)
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Sweep through budgeted rates and pass-through and back: the
		// producers must survive every transition. End below 1000 so the
		// final stretch still counts (pass-through counts nothing).
		for r := uint32(10); r <= 910; r += 90 {
			s.SetRatePermille(r)
			s.SetRatePermille(1000)
			s.SetRatePermille(r)
		}
	}()
	wg.Wait()
	<-done
	f, sk := s.Counts()
	if f == 0 {
		t.Error("no accesses forwarded under concurrency")
	}
	if f+sk == 0 {
		t.Error("sampler observed nothing")
	}
}

// Go-native sync (channels, WaitGroups) is never sampled away either.
func TestGoSyncAlwaysForwarded(t *testing.T) {
	c := &event.Counter{}
	s := New(c, Options{RatePermille: 1})
	for i := 0; i < 50; i++ {
		s.ChanSend(0, 1, 1)
		s.ChanRecv(1, 1, 1)
		s.WGAdd(0, 2, 1)
		s.WGDone(1, 2)
		s.WGWait(0, 2)
	}
	if c.ChanSends != 50 || c.ChanRecvs != 50 || c.WGAdds != 50 ||
		c.WGDones != 50 || c.WGWaits != 50 {
		t.Errorf("Go-native sync sampled away: %+v", *c)
	}
}
