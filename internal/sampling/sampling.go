// Package sampling implements a LiteRace-style sampling front end (Marino
// et al., PLDI 2009 — the paper's related work [14]): a wrapper that
// forwards only a sample of memory accesses to an underlying race
// detector, while always forwarding every synchronization operation (the
// happens-before structure must stay exact or the detector would invent
// races).
//
// Sampling follows LiteRace's cold-region hypothesis: code regions
// (synthetic PCs here) start at a 100% sampling rate that decays
// geometrically as the region gets hotter, down to a floor. Rarely
// executed code — where races hide, because hot paths get tested — keeps
// being analyzed; hot inner loops stop paying for instrumentation. The
// wrapper reports the effective sampling rate so benches can plot the
// overhead/coverage trade-off the sampling papers describe.
package sampling

import (
	"repro/internal/event"
	"repro/internal/vc"
)

// Options configure the sampler.
type Options struct {
	// BurstLength is how many accesses of a region are forwarded each time
	// its budget refreshes (default 10, as in LiteRace).
	BurstLength uint32
	// Decay divides a region's refresh budget each time it is exhausted
	// (default 2).
	Decay uint32
	// FloorPermille is the minimum sampling rate in ‰ (default 1, i.e.
	// 0.1%).
	FloorPermille uint32
}

// region tracks one code site's adaptive sampling state.
type region struct {
	remaining uint32 // accesses left in the current burst
	skip      uint32 // accesses to skip before the next burst
	gap       uint32 // current inter-burst gap (grows by Decay)
}

// Detector wraps an underlying sink with adaptive sampling; it implements
// event.Sink.
type Detector struct {
	opt     Options
	under   event.Sink
	regions map[event.PC]*region

	// Forwarded and Skipped count sampled vs dropped accesses.
	Forwarded, Skipped uint64
}

// New wraps under with a LiteRace-style sampler.
func New(under event.Sink, opt Options) *Detector {
	if opt.BurstLength == 0 {
		opt.BurstLength = 10
	}
	if opt.Decay == 0 {
		opt.Decay = 2
	}
	if opt.FloorPermille == 0 {
		opt.FloorPermille = 1
	}
	return &Detector{opt: opt, under: under, regions: make(map[event.PC]*region)}
}

// Rate returns the effective sampling rate over the run so far.
func (d *Detector) Rate() float64 {
	total := d.Forwarded + d.Skipped
	if total == 0 {
		return 1
	}
	return float64(d.Forwarded) / float64(total)
}

// sample decides whether this access of the region at pc is analyzed.
func (d *Detector) sample(pc event.PC) bool {
	r := d.regions[pc]
	if r == nil {
		// Cold region: start with a full burst.
		r = &region{remaining: d.opt.BurstLength, gap: d.opt.BurstLength}
		d.regions[pc] = r
	}
	if r.remaining > 0 {
		r.remaining--
		d.Forwarded++
		return true
	}
	if r.skip > 0 {
		r.skip--
		d.Skipped++
		return false
	}
	// Burst budget refresh: the gap grows until the floor rate is reached.
	maxGap := d.opt.BurstLength * 1000 / d.opt.FloorPermille
	if g := r.gap * d.opt.Decay; g < maxGap {
		r.gap = g
	} else {
		r.gap = maxGap
	}
	r.remaining = d.opt.BurstLength - 1
	r.skip = r.gap
	d.Forwarded++
	return true
}

// Read forwards a sampled read.
func (d *Detector) Read(tid vc.TID, addr uint64, size uint32, pc event.PC) {
	if d.sample(pc) {
		d.under.Read(tid, addr, size, pc)
	}
}

// Write forwards a sampled write.
func (d *Detector) Write(tid vc.TID, addr uint64, size uint32, pc event.PC) {
	if d.sample(pc) {
		d.under.Write(tid, addr, size, pc)
	}
}

// Synchronization and heap events are never sampled away.
func (d *Detector) Acquire(t vc.TID, l event.LockID) { d.under.Acquire(t, l) }
func (d *Detector) Release(t vc.TID, l event.LockID) { d.under.Release(t, l) }
func (d *Detector) AcquireShared(t vc.TID, l event.LockID) {
	d.under.AcquireShared(t, l)
}
func (d *Detector) ReleaseShared(t vc.TID, l event.LockID) {
	d.under.ReleaseShared(t, l)
}
func (d *Detector) Fork(p, c vc.TID) { d.under.Fork(p, c) }
func (d *Detector) Join(p, c vc.TID) { d.under.Join(p, c) }
func (d *Detector) BarrierArrive(t vc.TID, b event.BarrierID) {
	d.under.BarrierArrive(t, b)
}
func (d *Detector) BarrierDepart(t vc.TID, b event.BarrierID) {
	d.under.BarrierDepart(t, b)
}
func (d *Detector) Malloc(t vc.TID, a, s uint64) { d.under.Malloc(t, a, s) }
func (d *Detector) Free(t vc.TID, a, s uint64)   { d.under.Free(t, a, s) }
