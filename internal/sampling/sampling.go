// Package sampling implements a LiteRace-style sampling front end (Marino
// et al., PLDI 2009 — the paper's related work [14]): a wrapper that
// forwards only a sample of memory accesses to an underlying race
// detector, while always forwarding every synchronization operation (the
// happens-before structure must stay exact or the detector would invent
// races).
//
// Sampling follows LiteRace's cold-region hypothesis with a granularity
// twist in the spirit of the reproduced paper: a region is one code site
// × one 64-byte address block (Options.BlockShift), not a code site
// alone. Each region starts at a 100% sampling rate that decays
// geometrically as it gets hotter, down to a floor. Rarely exercised
// site×block pairs — where races hide, because hot paths get tested —
// keep being analyzed; hot inner loops stop paying for instrumentation.
// Keying regions on the address block as well as the site is what
// preserves recall under tight budgets: a racy address's first accesses
// form a fresh cold region even when the touching code site is hot.
//
// The budget is a steady-state target. Untouched-cold-region first
// bursts ride above it by design (dropping them is what destroys
// recall), so on streaming access patterns — where most blocks are seen
// only a handful of times — the achieved fraction floors at the cold
// mass regardless of budget; on iterating workloads it converges to the
// budget as the run amortizes its cold start.
//
// The sampler is shard-safe: region state lives in an open-addressed
// table of atomic slots updated by CAS, so it can sit in front of the
// parallel pipeline, the remote client or the cluster fan-out sink with
// concurrent producers. The skip path allocates nothing (the table only
// grows when a cold site is first seen, on the forwarded path).
//
// On top of the per-region decay sits a global budget (RatePermille, set
// from race.Options.Budget): hot regions converge to the budget rate, a
// run-wide credit check keeps the overall forwarded fraction at or under
// the budget, and a rate of 1000‰ short-circuits into pure pass-through —
// byte-identical to no sampler at all. SetRatePermille is the knob the
// feedback Controller turns at run time.
package sampling

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/event"
	"repro/internal/telemetry"
	"repro/internal/vc"
)

// Options configure the sampler.
type Options struct {
	// BurstLength is how many accesses of a region are forwarded each time
	// its budget refreshes (default 10, as in LiteRace).
	BurstLength uint32
	// Decay multiplies a region's inter-burst gap each time its budget is
	// exhausted (default 2).
	Decay uint32
	// FloorPermille is the minimum sampling rate in ‰ (default 1, i.e.
	// 0.1%). Regions never decay below it, and the Controller never
	// pushes the global rate under it.
	FloorPermille uint32
	// BlockShift sets the region granularity: a region is one code site ×
	// one 2^BlockShift-byte address block (default 6, i.e. 64-byte
	// blocks). Including address bits in the region key is what preserves
	// recall under tight budgets — a racy address's first accesses are a
	// fresh cold region even when its code site is hot. 64 or more
	// degenerates to classic LiteRace site-only regions.
	BlockShift uint8
	// RatePermille is the initial global sampling budget in ‰. 0 keeps
	// the classic LiteRace behaviour (decay to FloorPermille, no global
	// credit check); 1..999 makes hot regions converge on that rate and
	// caps the run-wide forwarded fraction at it; >= 1000 is pure
	// pass-through (every access forwarded, no state touched) so a 100%
	// budget is byte-identical to running without the sampler.
	RatePermille uint32
	// Telemetry, when non-nil, registers sampling_forwarded_total /
	// sampling_skipped_total counters and the detector_sampled_fraction
	// gauge on the registry.
	Telemetry *telemetry.Registry
}

// Region state packs into one uint64 so a CAS updates it atomically:
//
//	bits  0–15  remaining  accesses left in the current burst
//	bits 16–39  skip       accesses to skip before the next refresh
//	bits 40–63  gap        current inter-burst gap (grows by Decay)
const (
	remainingBits = 16
	skipBits      = 24
	gapBits       = 24
	maxRemaining  = 1<<remainingBits - 1
	maxGapValue   = 1<<gapBits - 1
)

func packState(remaining, skip, gap uint32) uint64 {
	return uint64(remaining) | uint64(skip)<<remainingBits |
		uint64(gap)<<(remainingBits+skipBits)
}

func unpackState(s uint64) (remaining, skip, gap uint32) {
	return uint32(s & maxRemaining),
		uint32(s >> remainingBits & (1<<skipBits - 1)),
		uint32(s >> (remainingBits + skipBits))
}

// slot is one open-addressed table entry: a PC key (stored +1 so zero
// means empty) and the packed region state. 16 bytes, cache-line friendly.
type slot struct {
	key   atomic.Uint64
	state atomic.Uint64
}

// table is one immutable-size generation of the region table; Detector
// swaps in doubled generations as sites accumulate.
type table struct {
	mask  uint64
	slots []slot
}

// Metrics is the sampler's telemetry instrument set. All fields are
// nil-safe: NewMetrics(nil) returns no-op instruments.
type Metrics struct {
	Forwarded *telemetry.Counter
	Skipped   *telemetry.Counter
}

// NewMetrics registers the sampling counters on r (nil r → no-ops).
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		Forwarded: r.Counter("sampling_forwarded_total",
			"Memory accesses the sampling front end forwarded to the detector."),
		Skipped: r.Counter("sampling_skipped_total",
			"Memory accesses the sampling front end dropped (sync is never dropped)."),
	}
}

// Detector wraps an underlying sink with adaptive sampling; it implements
// event.Sink and event.GoSink and is safe for concurrent producers.
type Detector struct {
	opt   Options
	under event.Sink

	rate atomic.Uint32 // global budget in ‰; >=1000 → pass-through

	tab    atomic.Pointer[table]
	used   atomic.Int64
	growMu sync.Mutex

	forwarded atomic.Uint64
	skipped   atomic.Uint64

	met *Metrics
}

// New wraps under with a LiteRace-style sampler.
func New(under event.Sink, opt Options) *Detector {
	if opt.BurstLength == 0 {
		opt.BurstLength = 10
	}
	if opt.BurstLength > maxRemaining {
		opt.BurstLength = maxRemaining
	}
	if opt.Decay == 0 {
		opt.Decay = 2
	}
	if opt.FloorPermille == 0 {
		opt.FloorPermille = 1
	}
	if opt.BlockShift == 0 {
		opt.BlockShift = 6
	}
	d := &Detector{opt: opt, under: under, met: NewMetrics(opt.Telemetry)}
	d.rate.Store(opt.RatePermille)
	t := &table{mask: 1023, slots: make([]slot, 1024)}
	d.tab.Store(t)
	if opt.Telemetry != nil {
		opt.Telemetry.GaugeFunc("detector_sampled_fraction",
			"Fraction of memory accesses forwarded to the detector (1 when unsampled).",
			d.Rate)
	}
	return d
}

// SetRatePermille sets the global sampling budget in ‰ (the Controller's
// knob). Values >= 1000 turn the sampler into a pass-through; values
// below FloorPermille are clamped up to it.
func (d *Detector) SetRatePermille(r uint32) {
	if r < d.opt.FloorPermille {
		r = d.opt.FloorPermille
	}
	d.rate.Store(r)
}

// RatePermille returns the current global budget in ‰ (0 = unbudgeted
// classic LiteRace decay).
func (d *Detector) RatePermille() uint32 { return d.rate.Load() }

// Counts returns the forwarded/skipped access tallies.
func (d *Detector) Counts() (forwarded, skipped uint64) {
	return d.forwarded.Load(), d.skipped.Load()
}

// Rate returns the effective sampling rate over the run so far (1 when no
// access has been observed, and on the 100% pass-through lane, which
// counts nothing).
func (d *Detector) Rate() float64 {
	f, s := d.Counts()
	if f+s == 0 {
		return 1
	}
	return float64(f) / float64(f+s)
}

// maxGap is the inter-burst gap at which a region's steady-state rate
// reaches the effective floor: Burst forwarded out of every Burst+gap.
func (d *Detector) maxGap(rate uint32) uint32 {
	r := rate
	if r == 0 || r < d.opt.FloorPermille {
		r = d.opt.FloorPermille
	}
	g := d.opt.BurstLength * 1000 / r
	if g > maxGapValue {
		g = maxGapValue
	}
	if g < 1 {
		g = 1
	}
	return g
}

// regionKey mixes the code site and the address block into the nonzero
// table key. The Fibonacci multiply spreads block bits across the word so
// (site, block) pairs rarely collide; a collision only merges two
// regions' sampling state, never correctness.
func (d *Detector) regionKey(pc event.PC, addr uint64) uint64 {
	return ((addr>>d.opt.BlockShift)+1)*0x9E3779B97F4A7C15 ^ (uint64(pc) + 1)
}

// lookup returns the slot for region key k, inserting it (state zero =
// untouched cold region) on first sight. Lock-free except when the table
// doubles.
func (d *Detector) lookup(k uint64) *slot {
	h := k * 0x9E3779B97F4A7C15
	for {
		t := d.tab.Load()
		idx := (h >> 32) & t.mask
		for probe := uint64(0); probe <= t.mask; probe++ {
			s := &t.slots[(idx+probe)&t.mask]
			switch got := s.key.Load(); got {
			case k:
				return s
			case 0:
				if !s.key.CompareAndSwap(0, k) {
					if s.key.Load() == k {
						return s
					}
					continue // lost to a different key; keep probing
				}
				if n := d.used.Add(1); uint64(n)*4 >= (t.mask+1)*3 {
					d.grow(t)
				}
				return s
			}
		}
		// Table replaced mid-probe (or pathologically full): retry on the
		// current generation.
		if d.tab.Load() == t {
			d.grow(t)
		}
	}
}

// grow doubles the region table. Region updates racing with the copy can
// be lost; that only perturbs a sampling decision (toward forwarding a
// fresh burst), never correctness.
func (d *Detector) grow(old *table) {
	d.growMu.Lock()
	defer d.growMu.Unlock()
	cur := d.tab.Load()
	if cur != old {
		return // someone else already grew past this generation
	}
	size := (cur.mask + 1) * 2
	next := &table{mask: size - 1, slots: make([]slot, size)}
	for i := range cur.slots {
		k := cur.slots[i].key.Load()
		if k == 0 {
			continue
		}
		st := cur.slots[i].state.Load()
		idx := (k * 0x9E3779B97F4A7C15 >> 32) & next.mask
		for probe := uint64(0); ; probe++ {
			s := &next.slots[(idx+probe)&next.mask]
			if s.key.Load() == 0 {
				s.key.Store(k)
				s.state.Store(st)
				break
			}
		}
	}
	d.tab.Store(next)
}

// sample decides whether this access of the region at (pc, addr block)
// is analyzed.
func (d *Detector) sample(pc event.PC, addr uint64) bool {
	rate := d.rate.Load()
	if rate >= 1000 {
		// 100% budget: pure pass-through, no counters, no region state —
		// byte-identical (and contention-identical) to no sampler.
		return true
	}
	s := d.lookup(d.regionKey(pc, addr))
	var forward, firstBurst bool
	for {
		old := s.state.Load()
		remaining, skip, gap := unpackState(old)
		firstBurst = gap == 0 ||
			(skip == 0 && remaining > 0 && gap == d.opt.BurstLength)
		var next uint64
		switch {
		case remaining > 0:
			forward = true
			next = packState(remaining-1, skip, gap)
		case skip > 0:
			forward = false
			next = packState(0, skip-1, gap)
		case gap == 0:
			// Untouched cold region: full first burst, no skip yet.
			forward = true
			next = packState(d.opt.BurstLength-1, 0, d.opt.BurstLength)
		default:
			// Budget refresh: the gap grows until the floor rate is reached.
			forward = true
			maxGap := d.maxGap(rate)
			g := gap
			if hi, lo := bits.Mul32(gap, d.opt.Decay); hi == 0 {
				g = lo
			} else {
				g = maxGap
			}
			if g > maxGap {
				g = maxGap
			}
			next = packState(d.opt.BurstLength-1, g, g)
		}
		if s.state.CompareAndSwap(old, next) {
			break
		}
	}
	if forward && rate > 0 && !firstBurst {
		// Global credit check: once the run-wide forwarded fraction is at
		// the budget, only untouched-cold-region bursts may exceed it.
		f, sk := d.forwarded.Load(), d.skipped.Load()
		if f*1000 >= (f+sk+1)*uint64(rate) {
			forward = false
		}
	}
	if forward {
		d.forwarded.Add(1)
		d.met.Forwarded.Inc()
	} else {
		d.skipped.Add(1)
		d.met.Skipped.Inc()
	}
	return forward
}

// Read forwards a sampled read.
func (d *Detector) Read(tid vc.TID, addr uint64, size uint32, pc event.PC) {
	if d.sample(pc, addr) {
		d.under.Read(tid, addr, size, pc)
	}
}

// Write forwards a sampled write.
func (d *Detector) Write(tid vc.TID, addr uint64, size uint32, pc event.PC) {
	if d.sample(pc, addr) {
		d.under.Write(tid, addr, size, pc)
	}
}

// Synchronization and heap events are never sampled away.
func (d *Detector) Acquire(t vc.TID, l event.LockID) { d.under.Acquire(t, l) }
func (d *Detector) Release(t vc.TID, l event.LockID) { d.under.Release(t, l) }
func (d *Detector) AcquireShared(t vc.TID, l event.LockID) {
	d.under.AcquireShared(t, l)
}
func (d *Detector) ReleaseShared(t vc.TID, l event.LockID) {
	d.under.ReleaseShared(t, l)
}
func (d *Detector) Fork(p, c vc.TID) { d.under.Fork(p, c) }
func (d *Detector) Join(p, c vc.TID) { d.under.Join(p, c) }
func (d *Detector) BarrierArrive(t vc.TID, b event.BarrierID) {
	d.under.BarrierArrive(t, b)
}
func (d *Detector) BarrierDepart(t vc.TID, b event.BarrierID) {
	d.under.BarrierDepart(t, b)
}
func (d *Detector) Malloc(t vc.TID, a, s uint64) { d.under.Malloc(t, a, s) }
func (d *Detector) Free(t vc.TID, a, s uint64)   { d.under.Free(t, a, s) }

// Go-native synchronization is never sampled either: the Dispatch helpers
// pass it through when the underlying sink speaks event.GoSink and lower
// it onto the synthetic locks otherwise, exactly as an unwrapped sink.
func (d *Detector) ChanSend(t vc.TID, ch event.ChanID, c int) {
	event.DispatchChanSend(d.under, t, ch, c)
}
func (d *Detector) ChanRecv(t vc.TID, ch event.ChanID, c int) {
	event.DispatchChanRecv(d.under, t, ch, c)
}
func (d *Detector) ChanAck(t vc.TID, ch event.ChanID, c int) {
	event.DispatchChanAck(d.under, t, ch, c)
}
func (d *Detector) WGAdd(t vc.TID, wg event.WGID, delta int) {
	event.DispatchWGAdd(d.under, t, wg, delta)
}
func (d *Detector) WGDone(t vc.TID, wg event.WGID) { event.DispatchWGDone(d.under, t, wg) }
func (d *Detector) WGWait(t vc.TID, wg event.WGID) { event.DispatchWGWait(d.under, t, wg) }
