package trace

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/detector"
	"repro/internal/event"
	"repro/internal/progfuzz"
	"repro/internal/sim"
	"repro/internal/vc"
)

// collector records a comparable rendering of every event.
type collector struct{ out []string }

func (c *collector) add(f string, a ...any) { c.out = append(c.out, fmt.Sprintf(f, a...)) }

func (c *collector) Read(t vc.TID, a uint64, s uint32, p event.PC) {
	c.add("r %d %x %d %d", t, a, s, p)
}
func (c *collector) Write(t vc.TID, a uint64, s uint32, p event.PC) {
	c.add("w %d %x %d %d", t, a, s, p)
}
func (c *collector) Acquire(t vc.TID, l event.LockID)          { c.add("a %d %d", t, l) }
func (c *collector) Release(t vc.TID, l event.LockID)          { c.add("rl %d %d", t, l) }
func (c *collector) AcquireShared(t vc.TID, l event.LockID)    { c.add("as %d %d", t, l) }
func (c *collector) ReleaseShared(t vc.TID, l event.LockID)    { c.add("rs %d %d", t, l) }
func (c *collector) Fork(p, ch vc.TID)                         { c.add("f %d %d", p, ch) }
func (c *collector) Join(p, ch vc.TID)                         { c.add("j %d %d", p, ch) }
func (c *collector) BarrierArrive(t vc.TID, b event.BarrierID) { c.add("ba %d %d", t, b) }
func (c *collector) BarrierDepart(t vc.TID, b event.BarrierID) { c.add("bd %d %d", t, b) }
func (c *collector) Malloc(t vc.TID, a, s uint64)              { c.add("m %d %x %d", t, a, s) }
func (c *collector) Free(t vc.TID, a, s uint64)                { c.add("fr %d %x %d", t, a, s) }

func TestRoundtripAllEventKinds(t *testing.T) {
	emit := func(s event.Sink) {
		s.Write(0, 0x1000, 8, event.MakePC(event.ModuleApp, 3))
		s.Read(1, 0x1008, 4, event.MakePC(event.ModuleLibc, 9))
		s.Read(1, 0x10, 2, 0) // negative address delta
		s.Acquire(0, 5)
		s.Release(0, 5)
		s.AcquireShared(1, 5)
		s.ReleaseShared(1, 5)
		s.Fork(0, 2)
		s.Join(0, 2)
		s.BarrierArrive(1, 7)
		s.BarrierDepart(1, 7)
		s.Malloc(2, 0x2000, 64)
		s.Free(2, 0x2000, 64)
	}
	data, err := Record(func(s event.Sink) { emit(s) })
	if err != nil {
		t.Fatal(err)
	}
	want := &collector{}
	emit(want)
	got := &collector{}
	if err := Replay(bytes.NewReader(data), got); err != nil {
		t.Fatal(err)
	}
	if len(got.out) != len(want.out) {
		t.Fatalf("lengths differ: %d vs %d", len(got.out), len(want.out))
	}
	for i := range want.out {
		if got.out[i] != want.out[i] {
			t.Errorf("event %d: %q vs %q", i, got.out[i], want.out[i])
		}
	}
}

func TestReplayTruncatedFails(t *testing.T) {
	data, err := Record(func(s event.Sink) { s.Write(0, 1, 1, 0) })
	if err != nil {
		t.Fatal(err)
	}
	if err := Replay(bytes.NewReader(data[:len(data)-1]), &collector{}); err == nil {
		t.Error("truncated trace must fail")
	}
	if err := Replay(bytes.NewReader([]byte{0xee}), &collector{}); err == nil {
		t.Error("garbage opcode must fail")
	}
}

// A detector fed from a replayed trace must produce exactly the verdict of
// the live run — the offline-analysis workflow.
func TestReplayedAnalysisMatchesLive(t *testing.T) {
	prog, _ := progfuzz.Generate(progfuzz.Config{
		Threads: 3, LockedVars: 4, PrivateVars: 2, RacyVars: 2,
		OpsPerThread: 200, Seed: 5,
	})

	live := detector.New(detector.Config{Granularity: detector.Dynamic})
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	sim.Run(prog, event.Tee{live, rec}, sim.Options{Seed: 5})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	offline := detector.New(detector.Config{Granularity: detector.Dynamic})
	if err := Replay(&buf, offline); err != nil {
		t.Fatal(err)
	}

	lr, or := live.Races(), offline.Races()
	if len(lr) != len(or) {
		t.Fatalf("live %d races, replayed %d", len(lr), len(or))
	}
	for i := range lr {
		if lr[i] != or[i] {
			t.Errorf("race %d differs: %v vs %v", i, lr[i], or[i])
		}
	}
	if live.Stats().Accesses != offline.Stats().Accesses {
		t.Error("replayed access count differs")
	}
}

func TestCompactness(t *testing.T) {
	// A sequential sweep should cost only a few bytes per access thanks to
	// delta encoding.
	data, err := Record(func(s event.Sink) {
		for i := 0; i < 1000; i++ {
			s.Write(0, 0x1000+uint64(i)*4, 4, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if perEvent := float64(len(data)) / 1000; perEvent > 6 {
		t.Errorf("sequential sweep costs %.1f bytes/event", perEvent)
	}
}

func TestRecorderEventCount(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	rec.Write(0, 1, 1, 0)
	rec.Read(0, 2, 1, 0)
	if rec.Events() != 2 {
		t.Errorf("events = %d", rec.Events())
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}
