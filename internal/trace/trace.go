// Package trace records an execution's event stream to a compact binary
// form and replays it into any detector later — the record/replay workflow
// of RecPlay and the related work in Section VI. Recording lets one
// execution be analyzed under many detector configurations with *exactly*
// the same event stream (the engine is deterministic anyway, but a trace
// also removes the cost of re-running the program and can be persisted).
//
// The format is a sequence of records: one opcode byte followed by
// varint-encoded operands. Access records carry (tid, addr, size, pc) with
// the address delta-encoded against the previous access, which makes
// sequential sweeps nearly free to store.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/event"
	"repro/internal/vc"
)

type opcode byte

const (
	opRead opcode = iota + 1
	opWrite
	opAcquire
	opRelease
	opFork
	opJoin
	opBarrierArrive
	opBarrierDepart
	opMalloc
	opFree
	opAcquireShared
	opReleaseShared
	opEnd
)

// Recorder is an event.Sink that serializes the stream.
type Recorder struct {
	w        *bufio.Writer
	buf      [4 * binary.MaxVarintLen64]byte
	lastAddr uint64
	events   uint64
	err      error
}

// NewRecorder returns a recorder writing to w.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: bufio.NewWriter(w)}
}

// Events returns the number of recorded events.
func (r *Recorder) Events() uint64 { return r.events }

// Close terminates the stream and flushes. The recorder is unusable
// afterwards.
func (r *Recorder) Close() error {
	r.op(opEnd)
	if err := r.w.Flush(); err != nil {
		return err
	}
	return r.err
}

func (r *Recorder) op(op opcode, operands ...uint64) {
	if r.err != nil {
		return
	}
	r.events++
	n := 0
	r.buf[n] = byte(op)
	n++
	for _, x := range operands {
		n += binary.PutUvarint(r.buf[n:], x)
	}
	if _, err := r.w.Write(r.buf[:n]); err != nil {
		r.err = err
	}
}

// zigzag encodes a signed delta as unsigned.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func (r *Recorder) access(op opcode, tid vc.TID, addr uint64, size uint32, pc event.PC) {
	delta := zigzag(int64(addr) - int64(r.lastAddr))
	r.lastAddr = addr
	r.op(op, uint64(tid), delta, uint64(size), uint64(pc))
}

func (r *Recorder) Read(tid vc.TID, addr uint64, size uint32, pc event.PC) {
	r.access(opRead, tid, addr, size, pc)
}

func (r *Recorder) Write(tid vc.TID, addr uint64, size uint32, pc event.PC) {
	r.access(opWrite, tid, addr, size, pc)
}

func (r *Recorder) Acquire(tid vc.TID, l event.LockID) {
	r.op(opAcquire, uint64(tid), uint64(l))
}

func (r *Recorder) Release(tid vc.TID, l event.LockID) {
	r.op(opRelease, uint64(tid), uint64(l))
}

func (r *Recorder) AcquireShared(tid vc.TID, l event.LockID) {
	r.op(opAcquireShared, uint64(tid), uint64(l))
}

func (r *Recorder) ReleaseShared(tid vc.TID, l event.LockID) {
	r.op(opReleaseShared, uint64(tid), uint64(l))
}

func (r *Recorder) Fork(p, c vc.TID) { r.op(opFork, uint64(p), uint64(c)) }
func (r *Recorder) Join(p, c vc.TID) { r.op(opJoin, uint64(p), uint64(c)) }

func (r *Recorder) BarrierArrive(tid vc.TID, b event.BarrierID) {
	r.op(opBarrierArrive, uint64(tid), uint64(b))
}

func (r *Recorder) BarrierDepart(tid vc.TID, b event.BarrierID) {
	r.op(opBarrierDepart, uint64(tid), uint64(b))
}

func (r *Recorder) Malloc(tid vc.TID, addr, size uint64) {
	r.op(opMalloc, uint64(tid), addr, size)
}

func (r *Recorder) Free(tid vc.TID, addr, size uint64) {
	r.op(opFree, uint64(tid), addr, size)
}

// Record runs an already-recorded stream into a buffer. Convenience for
// tests and tools: record into memory with NewRecorder(&bytes.Buffer{}).
func Record(run func(sink event.Sink)) ([]byte, error) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	run(rec)
	if err := rec.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Replay decodes the stream from rd and delivers every event to sink.
func Replay(rd io.Reader, sink event.Sink) error {
	br := bufio.NewReader(rd)
	var lastAddr uint64
	read := func() (uint64, error) { return binary.ReadUvarint(br) }
	for {
		opb, err := br.ReadByte()
		if err == io.EOF {
			return fmt.Errorf("trace: missing end-of-stream marker")
		}
		if err != nil {
			return err
		}
		op := opcode(opb)
		if op == opEnd {
			return nil
		}
		switch op {
		case opRead, opWrite:
			tid, err := read()
			if err != nil {
				return err
			}
			delta, err := read()
			if err != nil {
				return err
			}
			size, err := read()
			if err != nil {
				return err
			}
			pc, err := read()
			if err != nil {
				return err
			}
			addr := uint64(int64(lastAddr) + unzigzag(delta))
			lastAddr = addr
			if op == opRead {
				sink.Read(vc.TID(tid), addr, uint32(size), event.PC(pc))
			} else {
				sink.Write(vc.TID(tid), addr, uint32(size), event.PC(pc))
			}
		case opAcquire, opRelease, opAcquireShared, opReleaseShared,
			opFork, opJoin, opBarrierArrive, opBarrierDepart:
			a, err := read()
			if err != nil {
				return err
			}
			b, err := read()
			if err != nil {
				return err
			}
			switch op {
			case opAcquire:
				sink.Acquire(vc.TID(a), event.LockID(b))
			case opRelease:
				sink.Release(vc.TID(a), event.LockID(b))
			case opAcquireShared:
				sink.AcquireShared(vc.TID(a), event.LockID(b))
			case opReleaseShared:
				sink.ReleaseShared(vc.TID(a), event.LockID(b))
			case opFork:
				sink.Fork(vc.TID(a), vc.TID(b))
			case opJoin:
				sink.Join(vc.TID(a), vc.TID(b))
			case opBarrierArrive:
				sink.BarrierArrive(vc.TID(a), event.BarrierID(b))
			case opBarrierDepart:
				sink.BarrierDepart(vc.TID(a), event.BarrierID(b))
			}
		case opMalloc, opFree:
			tid, err := read()
			if err != nil {
				return err
			}
			addr, err := read()
			if err != nil {
				return err
			}
			size, err := read()
			if err != nil {
				return err
			}
			if op == opMalloc {
				sink.Malloc(vc.TID(tid), addr, size)
			} else {
				sink.Free(vc.TID(tid), addr, size)
			}
		default:
			return fmt.Errorf("trace: unknown opcode %d", op)
		}
	}
}
